package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws raw bytes at both decoder layers — frame parsing and
// batch unpacking. The contract under fuzz: truncated frames, bad CRCs, and
// oversized varints must come back as errors, never as panics, hangs, or
// over-allocation. A successful frame decode must satisfy the framing
// invariants; a successful batch decode must satisfy the batch invariants
// (bounded events, keys in range, ascending order).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: valid frames, valid batches, and near-miss corruptions.
	f.Add(AppendFrame(nil, FrameHello, helloPayload()))
	f.Add(AppendFrame(nil, FrameBatch, EncodeBatch([]int{1, 2, 2, 7})))
	f.Add(AppendFrame(nil, FrameAck, ackPayload(42)))
	f.Add(AppendFrame(nil, FrameError, errorPayload(400, "bad input")))
	f.Add(AppendFrame(nil, FramePing, nil))
	f.Add(EncodeBatch([]int{0}))
	f.Add(EncodeBatch([]int{5, 5, 5, 900}))
	truncated := AppendFrame(nil, FrameBatch, EncodeBatch([]int{3, 1, 4, 1, 5}))
	f.Add(truncated[:len(truncated)-3])
	badCRC := AppendFrame(nil, FrameBatch, EncodeBatch([]int{9, 9}))
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{FrameBatch, 0xFF, 0xFF, 0xFF, 0xFF})

	const maxEvents, maxKey = 1 << 16, 1 << 20

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: frame decoding. Must consume only this frame's bytes and
		// either error or hand back a payload within bounds.
		r := bytes.NewReader(data)
		typ, payload, _, err := ReadFrame(r, nil)
		if err == nil {
			if len(payload) > MaxFramePayload {
				t.Fatalf("frame decode returned %d-byte payload past cap", len(payload))
			}
			consumed := len(data) - r.Len()
			if consumed != len(payload)+frameOverhead {
				t.Fatalf("frame consumed %d bytes, want %d", consumed, len(payload)+frameOverhead)
			}
			// A structurally valid frame round-trips byte-identically.
			if !bytes.Equal(AppendFrame(nil, typ, payload), data[:consumed]) {
				t.Fatal("frame re-encode mismatch")
			}
		}

		// Layer 2: batch decoding on the raw input (the decoder must be safe
		// on arbitrary bytes, framed or not).
		keys, err := DecodeBatch(data, maxEvents, maxKey)
		if err == nil {
			if len(keys) == 0 || len(keys) > maxEvents {
				t.Fatalf("batch decode returned %d keys outside (0,%d]", len(keys), maxEvents)
			}
			for i, k := range keys {
				if k < 0 || k >= maxKey {
					t.Fatalf("key %d out of range", k)
				}
				if i > 0 && k < keys[i-1] {
					t.Fatal("keys not ascending")
				}
			}
			// A valid batch survives a re-encode/re-decode cycle.
			again, err := DecodeBatch(EncodeBatch(keys), maxEvents, maxKey)
			if err != nil {
				t.Fatalf("re-decode of valid batch failed: %v", err)
			}
			if len(again) != len(keys) {
				t.Fatalf("re-decode length %d, want %d", len(again), len(keys))
			}
		}

		// Layer 3: the reply codecs must tolerate arbitrary bodies.
		parseError(data)
		parseAck(data)
		parseHello(data)
	})
}
