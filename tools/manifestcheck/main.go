// Command manifestcheck validates the Kubernetes manifests under deploy/
// without kubectl or a YAML dependency: it parses the restricted YAML
// subset the manifests are written in (2-space indentation, maps, lists,
// double-quoted or plain scalars, ----separated documents, full-line
// comments) and asserts the deployment contract the rest of the repo
// depends on — probe paths match the server's health surfaces, the gossip
// seed resolves through a headless Service, the WAL directory is backed by
// a PVC, and the SIGTERM drain budget fits inside the grace period.
//
// Usage: go run ./tools/manifestcheck [-dir deploy]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	dir := flag.String("dir", "deploy", "directory of manifests to validate")
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*dir, "*.yaml"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "manifestcheck: no *.yaml under %s\n", *dir)
		os.Exit(1)
	}
	sort.Strings(paths)

	var docs []doc
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %v\n", err)
			os.Exit(1)
		}
		for i, src := range splitDocs(string(blob)) {
			v, err := parseYAML(src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "manifestcheck: %s doc %d: %v\n", p, i+1, err)
				os.Exit(1)
			}
			m, ok := v.(map[string]any)
			if !ok {
				fmt.Fprintf(os.Stderr, "manifestcheck: %s doc %d: top level is not a mapping\n", p, i+1)
				os.Exit(1)
			}
			docs = append(docs, doc{path: p, n: i + 1, m: m})
		}
	}

	c := &checker{}
	var sets []doc
	headless := map[string]bool{} // headless Service name -> publishNotReadyAddresses
	for _, d := range docs {
		kind, _ := str(d.m, "kind")
		name, _ := str(d.m, "metadata", "name")
		if name == "" {
			c.errf(d, "metadata.name is missing")
		}
		switch kind {
		case "Service":
			c.checkService(d, headless)
		case "StatefulSet":
			sets = append(sets, d)
		default:
			c.errf(d, "unexpected kind %q (only Service and StatefulSet belong in deploy/)", kind)
		}
	}
	if len(sets) == 0 {
		fmt.Fprintln(os.Stderr, "manifestcheck: no StatefulSet found")
		os.Exit(1)
	}
	for _, d := range sets {
		c.checkStatefulSet(d, headless)
	}
	if c.fail {
		os.Exit(1)
	}
	fmt.Printf("manifestcheck: %d documents in %d files OK\n", len(docs), len(paths))
}

type doc struct {
	path string
	n    int
	m    map[string]any
}

type checker struct{ fail bool }

func (c *checker) errf(d doc, format string, args ...any) {
	c.fail = true
	fmt.Fprintf(os.Stderr, "manifestcheck: %s doc %d: %s\n", d.path, d.n, fmt.Sprintf(format, args...))
}

func (c *checker) checkService(d doc, headless map[string]bool) {
	if api, _ := str(d.m, "apiVersion"); api != "v1" {
		c.errf(d, "Service apiVersion %q, want v1", api)
	}
	name, _ := str(d.m, "metadata", "name")
	if _, ok := get(d.m, "spec", "selector", "app"); !ok {
		c.errf(d, "Service %s: spec.selector.app is missing", name)
	}
	ports, _ := get(d.m, "spec", "ports")
	pl, _ := ports.([]any)
	if len(pl) == 0 {
		c.errf(d, "Service %s: spec.ports is empty", name)
	}
	for _, p := range pl {
		pm, _ := p.(map[string]any)
		if _, ok := str(pm, "name"); !ok {
			c.errf(d, "Service %s: every port needs a name", name)
		}
		if port, ok := str(pm, "port"); !ok || !isInt(port) {
			c.errf(d, "Service %s: port %q is not an integer", name, port)
		}
	}
	if ip, _ := str(d.m, "spec", "clusterIP"); ip == "None" {
		pub, _ := str(d.m, "spec", "publishNotReadyAddresses")
		headless[name] = pub == "true"
	}
}

func (c *checker) checkStatefulSet(d doc, headless map[string]bool) {
	if api, _ := str(d.m, "apiVersion"); api != "apps/v1" {
		c.errf(d, "StatefulSet apiVersion %q, want apps/v1", api)
	}
	name, _ := str(d.m, "metadata", "name")

	// The governing Service must exist, be headless, and publish unready
	// addresses — a booting pod is NotReady until its first rebalance
	// completes, but gossip needs its DNS name resolvable immediately.
	svc, _ := str(d.m, "spec", "serviceName")
	if svc == "" {
		c.errf(d, "StatefulSet %s: spec.serviceName is missing", name)
	} else if pub, ok := headless[svc]; !ok {
		c.errf(d, "StatefulSet %s: serviceName %q does not match any headless Service (clusterIP: None)", name, svc)
	} else if !pub {
		c.errf(d, "StatefulSet %s: headless Service %q must set publishNotReadyAddresses: true (gossip seed must resolve before ready)", name, svc)
	}

	if r, ok := str(d.m, "spec", "replicas"); !ok || !isInt(r) {
		c.errf(d, "StatefulSet %s: spec.replicas %q is not an integer", name, r)
	}
	sel, _ := str(d.m, "spec", "selector", "matchLabels", "app")
	lbl, _ := str(d.m, "spec", "template", "metadata", "labels", "app")
	if sel == "" || sel != lbl {
		c.errf(d, "StatefulSet %s: selector.matchLabels.app %q != template label %q", name, sel, lbl)
	}

	// Scrape annotations must agree with the container port so the
	// Prometheus discovery config in docs/DEPLOY.md works as written.
	if v, _ := str(d.m, "spec", "template", "metadata", "annotations", "prometheus.io/scrape"); v != "true" {
		c.errf(d, "StatefulSet %s: prometheus.io/scrape annotation is %q, want \"true\"", name, v)
	}
	if v, _ := str(d.m, "spec", "template", "metadata", "annotations", "prometheus.io/path"); v != "/metrics" {
		c.errf(d, "StatefulSet %s: prometheus.io/path annotation is %q, want \"/metrics\"", name, v)
	}
	scrapePort, _ := str(d.m, "spec", "template", "metadata", "annotations", "prometheus.io/port")

	cs, _ := get(d.m, "spec", "template", "spec", "containers")
	cl, _ := cs.([]any)
	if len(cl) == 0 {
		c.errf(d, "StatefulSet %s: no containers", name)
		return
	}
	ct, _ := cl[0].(map[string]any)

	args := stringList(ct["args"])
	joined := strings.Join(args, " ")
	for _, want := range []string{"-cluster", "-decommission"} {
		if !hasArg(args, want) {
			c.errf(d, "StatefulSet %s: container args are missing %s", name, want)
		}
	}

	// Every $(VAR) substitution in args must be backed by an env entry, or
	// kubelet passes the literal through and the node advertises garbage.
	env, _ := ct["env"].([]any)
	envNames := map[string]bool{}
	for _, e := range env {
		em, _ := e.(map[string]any)
		if n, ok := str(em, "name"); ok {
			envNames[n] = true
		}
	}
	for _, v := range [...]string{"POD_NAME", "POD_NAMESPACE"} {
		if strings.Contains(joined, "$("+v+")") && !envNames[v] {
			c.errf(d, "StatefulSet %s: args reference $(%s) but no env entry defines it", name, v)
		}
	}
	// -advertise and -join must route through the headless Service's DNS.
	if svc != "" && !strings.Contains(joined, "-advertise=http://$(POD_NAME)."+svc+".") {
		c.errf(d, "StatefulSet %s: -advertise must use the per-pod DNS name $(POD_NAME).%s....", name, svc)
	}
	if svc != "" && !strings.Contains(joined, "-join=http://"+name+"-0."+svc+".") {
		c.errf(d, "StatefulSet %s: -join must seed from pod 0 via the headless Service", name)
	}

	// Probe contract: liveness /healthz (restart on hang), readiness
	// /readyz (depool while rebalancing); see docs/OPERATIONS.md.
	portNames := map[string]string{}
	for _, p := range stringListOfMaps(ct["ports"]) {
		n, _ := str(p, "name")
		cp, _ := str(p, "containerPort")
		portNames[n] = cp
	}
	c.checkProbe(d, name, ct, "readinessProbe", "/readyz", portNames)
	c.checkProbe(d, name, ct, "livenessProbe", "/healthz", portNames)
	if scrapePort != "" {
		found := false
		for _, cp := range portNames {
			if cp == scrapePort {
				found = true
			}
		}
		if !found {
			c.errf(d, "StatefulSet %s: prometheus.io/port %q matches no containerPort", name, scrapePort)
		}
	}

	// The WAL directory must live on a PVC: -dir points at a volumeMount
	// whose name matches a volumeClaimTemplate.
	dirArg := ""
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "-dir="); ok {
			dirArg = v
		}
	}
	if dirArg == "" {
		c.errf(d, "StatefulSet %s: container args are missing -dir=", name)
	}
	mountName := ""
	for _, m := range stringListOfMaps(ct["volumeMounts"]) {
		if mp, _ := str(m, "mountPath"); mp == dirArg {
			mountName, _ = str(m, "name")
		}
	}
	if mountName == "" {
		c.errf(d, "StatefulSet %s: -dir=%s is not a volumeMount mountPath (WAL would land on the ephemeral layer)", name, dirArg)
	}
	claimed := false
	vcts, _ := get(d.m, "spec", "volumeClaimTemplates")
	for _, t := range toMaps(vcts) {
		n, _ := str(t, "metadata", "name")
		if n != mountName {
			continue
		}
		claimed = true
		if _, ok := str(t, "spec", "resources", "requests", "storage"); !ok {
			c.errf(d, "StatefulSet %s: volumeClaimTemplate %q requests no storage", name, n)
		}
		if modes := stringList(mustGet(t, "spec", "accessModes")); len(modes) == 0 {
			c.errf(d, "StatefulSet %s: volumeClaimTemplate %q has no accessModes", name, n)
		}
	}
	if mountName != "" && !claimed {
		c.errf(d, "StatefulSet %s: volumeMount %q has no matching volumeClaimTemplate", name, mountName)
	}

	// SIGTERM drain: grace period must exceed the -drain-timeout budget,
	// or the kubelet SIGKILLs counterd mid-handoff.
	grace, _ := str(d.m, "spec", "template", "spec", "terminationGracePeriodSeconds")
	gsec, err := strconv.Atoi(grace)
	if err != nil {
		c.errf(d, "StatefulSet %s: terminationGracePeriodSeconds %q is not an integer", name, grace)
		return
	}
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "-drain-timeout="); ok {
			dur, err := time.ParseDuration(v)
			if err != nil {
				c.errf(d, "StatefulSet %s: -drain-timeout=%s: %v", name, v, err)
			} else if time.Duration(gsec)*time.Second <= dur {
				c.errf(d, "StatefulSet %s: terminationGracePeriodSeconds %d must exceed -drain-timeout %s", name, gsec, v)
			}
		}
	}
}

func (c *checker) checkProbe(d doc, name string, ct map[string]any, probe, wantPath string, ports map[string]string) {
	path, ok := str(ct, probe, "httpGet", "path")
	if !ok {
		c.errf(d, "StatefulSet %s: container has no %s.httpGet", name, probe)
		return
	}
	if path != wantPath {
		c.errf(d, "StatefulSet %s: %s path %q, want %s", name, probe, path, wantPath)
	}
	port, _ := str(ct, probe, "httpGet", "port")
	if _, named := ports[port]; !named && !isInt(port) {
		c.errf(d, "StatefulSet %s: %s port %q matches no container port name", name, probe, port)
	}
}

// --- generic access helpers -------------------------------------------------

func get(m map[string]any, path ...string) (any, bool) {
	var cur any = m
	for _, k := range path {
		mm, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = mm[k]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func mustGet(m map[string]any, path ...string) any {
	v, _ := get(m, path...)
	return v
}

func str(m map[string]any, path ...string) (string, bool) {
	v, ok := get(m, path...)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

func isInt(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil
}

func hasArg(args []string, flag string) bool {
	for _, a := range args {
		if a == flag || strings.HasPrefix(a, flag+"=") {
			return true
		}
	}
	return false
}

func stringList(v any) []string {
	l, _ := v.([]any)
	out := make([]string, 0, len(l))
	for _, e := range l {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

func toMaps(v any) []map[string]any {
	l, _ := v.([]any)
	out := make([]map[string]any, 0, len(l))
	for _, e := range l {
		if m, ok := e.(map[string]any); ok {
			out = append(out, m)
		}
	}
	return out
}

func stringListOfMaps(v any) []map[string]any { return toMaps(v) }

// --- the YAML-subset parser -------------------------------------------------

// splitDocs splits on "---" document separators at column 0.
func splitDocs(src string) []string {
	var docs []string
	var cur []string
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimRight(line, " ") == "---" {
			docs = append(docs, strings.Join(cur, "\n"))
			cur = cur[:0]
			continue
		}
		cur = append(cur, line)
	}
	docs = append(docs, strings.Join(cur, "\n"))
	var out []string
	for _, d := range docs {
		if strings.TrimSpace(d) != "" {
			out = append(out, d)
		}
	}
	return out
}

type yline struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line
}

// parseYAML parses one document of the restricted subset: nested maps
// (`key: value` / `key:` + indented block), lists (`- item`, `- key: v`
// opening a map item), double-quoted or plain scalars, full-line comments.
// Tabs, anchors, flow collections, block scalars, and trailing comments are
// rejected — the deploy/ manifests stay inside this subset on purpose.
func parseYAML(src string) (any, error) {
	var lines []yline
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("line %d: tab indentation is outside the subset", i+1)
		}
		trimmed := strings.TrimLeft(raw, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		lines = append(lines, yline{indent: len(raw) - len(trimmed), text: strings.TrimRight(trimmed, " "), num: i + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: %q is indented under nothing", lines[next].num, lines[next].text)
	}
	return v, nil
}

func parseBlock(lines []yline, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseMap(lines []yline, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("line %d: unexpected indent", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") {
			break // a list at this indent belongs to the parent key
		}
		key, rest, ok := strings.Cut(ln.text, ":")
		if !ok {
			return nil, 0, fmt.Errorf("line %d: %q is not `key: value`", ln.num, ln.text)
		}
		key = strings.TrimSpace(key)
		rest = strings.TrimSpace(rest)
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			s, err := scalar(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			m[key] = s
			i++
			continue
		}
		i++
		// `key:` introduces a nested block — deeper-indented map or scalar,
		// or a list indented at least as far as the key.
		if i >= len(lines) || lines[i].indent < indent ||
			(lines[i].indent == indent && !strings.HasPrefix(lines[i].text, "- ")) {
			return nil, 0, fmt.Errorf("line %d: key %q has no value", ln.num, key)
		}
		v, next, err := parseBlock(lines, i, lines[i].indent)
		if err != nil {
			return nil, 0, err
		}
		m[key] = v
		i = next
	}
	return m, i, nil
}

func parseList(lines []yline, i, indent int) (any, int, error) {
	var l []any
	for i < len(lines) {
		ln := lines[i]
		if ln.indent != indent || !strings.HasPrefix(ln.text, "- ") {
			if ln.indent >= indent {
				return nil, 0, fmt.Errorf("line %d: %q inside a list block", ln.num, ln.text)
			}
			break
		}
		item := strings.TrimSpace(ln.text[2:])
		if k, _, ok := strings.Cut(item, ":"); ok && !strings.HasPrefix(item, "\"") && isKey(k) {
			// `- key: ...` opens a map item: re-anchor this line at the
			// item's own column and parse a map block there.
			sub := make([]yline, 0, len(lines)-i)
			sub = append(sub, yline{indent: ln.indent + 2, text: item, num: ln.num})
			j := i + 1
			for j < len(lines) && lines[j].indent > ln.indent {
				sub = append(sub, lines[j])
				j++
			}
			v, next, err := parseMap(sub, 0, ln.indent+2)
			if err != nil {
				return nil, 0, err
			}
			if next != len(sub) {
				return nil, 0, fmt.Errorf("line %d: stray content in list item", sub[next].num)
			}
			l = append(l, v)
			i = j
			continue
		}
		s, err := scalar(item, ln.num)
		if err != nil {
			return nil, 0, err
		}
		l = append(l, s)
		i++
	}
	return l, i, nil
}

// isKey reports whether s looks like a mapping key (letters, digits, and
// the punctuation K8s field names use), so `- -cluster` parses as a scalar
// while `- name: data` opens a map.
func isKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '/', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func scalar(s string, num int) (string, error) {
	if strings.HasPrefix(s, "\"") {
		uq, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("line %d: bad quoted scalar %s: %v", num, s, err)
		}
		return uq, nil
	}
	if strings.HasPrefix(s, "'") || strings.Contains(s, " #") {
		return "", fmt.Errorf("line %d: scalar %q is outside the subset (use double quotes, no trailing comments)", num, s)
	}
	return s, nil
}
