// Package stream provides the workload generators the experiments and
// application benchmarks draw from: Zipf-distributed item streams (the
// skewed "page view" workloads motivating the paper's analytics scenario),
// uniform and bursty streams, random-total draws (the Figure 1 workload
// picks N uniformly from [500000, 999999]), and permutation streams for the
// inversion-counting application.
package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Source yields an infinite stream of item identifiers in [0, Universe).
type Source interface {
	// Next returns the next item.
	Next() uint64
	// Universe returns the number of distinct possible items.
	Universe() uint64
}

// Zipf samples items with P(i) ∝ 1/(i+1)^s over [0, n), heaviest first —
// the canonical skewed analytics workload. Sampling is by inverse CDF with
// binary search over a precomputed table (exact, O(log n) per draw).
type Zipf struct {
	rng *xrand.Rand
	cdf []float64
}

var _ Source = (*Zipf)(nil)

// NewZipf builds a Zipf source over n items with exponent s > 0.
func NewZipf(n uint64, s float64, rng *xrand.Rand) *Zipf {
	if n == 0 || n > 1<<26 {
		panic(fmt.Sprintf("stream: Zipf universe %d out of (0, 2^26]", n))
	}
	if !(s > 0) {
		panic(fmt.Sprintf("stream: Zipf exponent %v must be positive", s))
	}
	if rng == nil {
		panic("stream: nil rng")
	}
	cdf := make([]float64, n)
	var total float64
	for i := uint64(0); i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{rng: rng, cdf: cdf}
}

// Next implements Source.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return uint64(i)
}

// Universe implements Source.
func (z *Zipf) Universe() uint64 { return uint64(len(z.cdf)) }

// Probability returns P(item = i).
func (z *Zipf) Probability(i uint64) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Uniform samples items uniformly from [0, n).
type Uniform struct {
	rng *xrand.Rand
	n   uint64
}

var _ Source = (*Uniform)(nil)

// NewUniform builds a uniform source over n items.
func NewUniform(n uint64, rng *xrand.Rand) *Uniform {
	if n == 0 {
		panic("stream: empty uniform universe")
	}
	if rng == nil {
		panic("stream: nil rng")
	}
	return &Uniform{rng: rng, n: n}
}

// Next implements Source.
func (u *Uniform) Next() uint64 { return u.rng.Uint64n(u.n) }

// Universe implements Source.
func (u *Uniform) Universe() uint64 { return u.n }

// Bursty emits runs of a single item: each burst picks a uniform item and a
// geometric length with the given mean. Bursts exercise counters' behavior
// under adversarially correlated (non-i.i.d.) arrivals.
type Bursty struct {
	rng       *xrand.Rand
	n         uint64
	meanBurst float64
	cur       uint64
	left      uint64
}

var _ Source = (*Bursty)(nil)

// NewBursty builds a bursty source over n items with mean burst length mean.
func NewBursty(n uint64, mean float64, rng *xrand.Rand) *Bursty {
	if n == 0 {
		panic("stream: empty bursty universe")
	}
	if !(mean >= 1) {
		panic("stream: burst mean must be ≥ 1")
	}
	if rng == nil {
		panic("stream: nil rng")
	}
	return &Bursty{rng: rng, n: n, meanBurst: mean}
}

// Next implements Source.
func (b *Bursty) Next() uint64 {
	if b.left == 0 {
		b.cur = b.rng.Uint64n(b.n)
		b.left = b.rng.Geometric(1 / b.meanBurst)
	}
	b.left--
	return b.cur
}

// Universe implements Source.
func (b *Bursty) Universe() uint64 { return b.n }

// Sequential cycles deterministically through 0, 1, ..., n−1 — the
// worst case for popularity skew assumptions and a useful determinism check.
type Sequential struct {
	n, next uint64
}

var _ Source = (*Sequential)(nil)

// NewSequential builds a round-robin source over n items.
func NewSequential(n uint64) *Sequential {
	if n == 0 {
		panic("stream: empty sequential universe")
	}
	return &Sequential{n: n}
}

// Next implements Source.
func (s *Sequential) Next() uint64 {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

// Universe implements Source.
func (s *Sequential) Universe() uint64 { return s.n }

// Materialize draws length items from src into a slice.
func Materialize(src Source, length int) []uint64 {
	out := make([]uint64, length)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}

// ExactCounts tallies a materialized stream into a frequency map — the
// ground truth every approximate structure is judged against.
func ExactCounts(items []uint64) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, it := range items {
		m[it]++
	}
	return m
}

// FigureOneTotal draws N uniformly from [lo, hi] — the paper's Figure 1
// picks a uniformly random 20-bit-scale total in [500000, 999999] per trial.
func FigureOneTotal(rng *xrand.Rand, lo, hi uint64) uint64 {
	return rng.Range(lo, hi)
}

// Permutation returns a uniformly random permutation of {0, ..., n−1},
// streamed by the inversion-counting application.
func Permutation(n int, rng *xrand.Rand) []int {
	return rng.Perm(n)
}

// SortedPermutation returns the identity permutation (zero inversions).
func SortedPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// ReversedPermutation returns the descending permutation, which has the
// maximum possible n(n−1)/2 inversions.
func ReversedPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}
