package experiments

import (
	"fmt"

	"repro/internal/lowerbound"
	"repro/internal/xrand"
)

// LowerBoundConfig parameterizes the Theorem 3.1 reproduction (E6).
type LowerBoundConfig struct {
	Trials int
	Seed   uint64
}

func (c LowerBoundConfig) withDefaults() LowerBoundConfig {
	if c.Trials == 0 {
		c.Trials = 400
	}
	return c
}

// LowerBound makes Theorem 3.1's proof executable (experiment E6). For each
// state budget S it (a) derandomizes the S-bit Morris automaton and exhibits
// the pumping witness N1 < N2 ≤ T/2 with N3 ∈ [2T, 4T] reaching the same
// state, (b) counts the derandomized machine's exact distinguishing errors,
// and (c) contrasts with the *randomized* machine, which distinguishes fine
// when S is large enough and collapses when it is not.
func LowerBound(cfg LowerBoundConfig) Table {
	cfg = cfg.withDefaults()
	rng := xrand.NewSeeded(cfg.Seed)
	tb := Table{
		ID:    "E6/lowerbound",
		Title: "Theorem 3.1: derandomization + pumping makes small counters provably wrong",
		Columns: []string{
			"S bits", "a", "T", "witness N1<N2<=T/2 -> N3 in [2T,4T]",
			"Cdet fail", "randomized fail",
		},
	}
	type pt struct {
		s int
		a float64
		t uint64
	}
	sweep := []pt{
		{4, 1, 256},
		{6, 1, 4096},
		{6, 0.25, 4096},
		{8, 0.5, 65536},
		{3, 1, 4096}, // undersized even when randomized
	}
	for _, p := range sweep {
		m := lowerbound.NewMorrisMachine(p.s, p.a)
		d := lowerbound.Derandomize(m)
		witness := "none found"
		if w, ok := lowerbound.FindPumpingWitness(d, p.t); ok {
			witness = fmt.Sprintf("%d<%d -> %d (state %d)", w.N1, w.N2, w.N3, w.State)
		}
		det := lowerbound.DFADistinguishErrors(d, p.t)
		rnd := lowerbound.MeasureDistinguish(m, p.t, cfg.Trials, rng)
		tb.AddRow(
			fmtI(p.s), fmtF(p.a), fmtU(p.t), witness,
			fmtF(det.FailureRate()), fmtF(rnd.FailureRate()),
		)
	}
	// The second construction: state counting over N_j probes.
	big := lowerbound.MeasureStateCounting(lowerbound.NewMorrisMachine(16, 0.005), 0.25, 1<<20, rng)
	small := lowerbound.MeasureStateCounting(lowerbound.NewMorrisMachine(3, 1), 0.25, 1<<20, rng)
	tb.Notes = append(tb.Notes,
		"expected: Cdet fails on ≈ all high-side queries (derandomized Morris stalls); the randomized machine fails only when S is too small (last row)",
		fmt.Sprintf("state counting (ε=0.25, n=2^20): 16-bit machine recovered %d/%d probes in %d distinct states; 3-bit machine recovered %d/%d — 2^S lower-bounds recoverable probes",
			big.Recovered, big.Probes, big.DistinctStates, small.Recovered, small.Probes),
	)
	return tb
}
