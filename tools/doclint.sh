#!/usr/bin/env bash
# doclint: grep-based sanity checks for the repo's markdown documentation.
#
#   1. Every intra-repo markdown link [text](path) resolves to a real file
#      (http(s)/mailto/#anchor links are skipped; anchors are stripped).
#   2. Every backticked flag reference `-foo` in README.md and docs/*.md
#      names a real flag of cmd/counterd or a cmd/countertool subcommand
#      (flag names are extracted from the Go flag registrations, so the
#      docs can never drift ahead of — or behind — the binaries).
#   3. Every backticked repo path (`docs/X.md`, `internal/pkg`, `cmd/...`,
#      `examples/...`, `tools/...`) points at something that exists.
#
# Run from the repository root: bash tools/doclint.sh  (or: make doclint)
set -u

fail=0
err() {
  echo "doclint: $*" >&2
  fail=1
}

docs=(README.md docs/*.md)

# --- 1. intra-repo markdown links --------------------------------------
for md in "${docs[@]}"; do
  base=$(dirname "$md")
  # Extract every ](target) occurrence; tolerate multiple per line.
  while IFS= read -r target; do
    case $target in
    http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path=${target%%#*} # strip anchor
    [ -z "$path" ] && continue
    if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
      err "$md: broken link ($target)"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. flag references -------------------------------------------------
# Real flags, straight from the flag registrations in the command sources.
flags=$(grep -ohE '(fs|flag)\.[A-Za-z0-9]*Var?\([^,]*, *"[^"]+"|(fs|flag)\.(String|Int|Int64|Uint64|Float64|Bool|Duration)\("[^"]+"' \
  cmd/counterd/*.go cmd/countertool/*.go |
  grep -oE '"[^"]+"' | tr -d '"' | sort -u)
# Toolchain flags the docs legitimately mention (go test / kill).
allow="9 race bench benchtime run fuzz fuzztime v h o"

for md in "${docs[@]}"; do
  while IFS= read -r tok; do
    name=${tok#\`-}
    ok=0
    for f in $flags $allow; do
      if [ "$f" = "$name" ]; then
        ok=1
        break
      fi
    done
    if [ "$ok" = 0 ]; then
      err "$md: flag reference \`-$name\` matches no counterd/countertool flag"
    fi
  done < <(grep -ohE '`-[a-zA-Z0-9][a-zA-Z0-9-]*' "$md" | sort -u)
done

# --- 3. backticked repo paths -------------------------------------------
for md in "${docs[@]}"; do
  while IFS= read -r tok; do
    path=${tok#\`}
    path=${path%\`}
    # Only judge things that look like repo paths: known top-level roots.
    case $path in
    docs/* | internal/* | cmd/* | examples/* | tools/* | deploy/* | bin/*) ;;
    *) continue ;;
    esac
    # Skip command lines, globs, and placeholders.
    case $path in
    *' '* | *'*'* | *'{'* | *'<'* | *'…'*) continue ;;
    esac
    # bin/ artifacts are build outputs, not checked-in files.
    case $path in bin/*) continue ;; esac
    if [ ! -e "$path" ]; then
      err "$md: path reference \`$path\` does not exist"
    fi
  done < <(grep -ohE '`[A-Za-z0-9_./-]+`' "$md" | sort -u)
done

if [ "$fail" = 0 ]; then
  echo "doclint: ${#docs[@]} files clean"
fi
exit $fail
