// Package stats provides the statistical machinery the experiment harnesses
// use to turn raw counter trials into the numbers the paper reports:
// streaming moments (Welford), empirical CDFs (Figure 1 is an ECDF plot),
// quantiles, histograms, Kolmogorov–Smirnov distance (merge experiments
// compare whole distributions), and chi-square goodness of fit with p-values
// via a regularized incomplete gamma implemented from scratch (stdlib has
// Lgamma but no igamma).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, variance (Welford), min and max in a
// single streaming pass. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// ECDF is an empirical cumulative distribution function over a fixed sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs. It panics on an empty sample.
func NewECDF(xs []float64) *ECDF {
	if len(xs) == 0 {
		panic("stats: ECDF over empty sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = fraction of the sample ≤ x.
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1] using the nearest-rank
// convention (Quantile(1) is the sample max).
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Max returns the sample maximum.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Min returns the sample minimum.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Series evaluates the ECDF at n evenly spaced probability levels and
// returns (percentile, value) pairs — exactly the series plotted as
// Figure 1 in the paper (x = percent of trials, y = relative error level).
func (e *ECDF) Series(n int) []Point {
	if n < 2 {
		n = 2
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		out[i] = Point{X: 100 * q, Y: e.Quantile(q)}
	}
	return out
}

// Point is one (x, y) pair of a plotted series.
type Point struct{ X, Y float64 }

// KolmogorovSmirnov returns the KS statistic sup|F1−F2| between two samples.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KS over empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] < bs[j]:
			i++
		case as[i] > bs[j]:
			j++
		default:
			// Ties must advance both pointers past the tied value before the
			// CDFs are compared, otherwise identical samples report a
			// spurious gap.
			v := as[i]
			for i < len(as) && as[i] == v {
				i++
			}
			for j < len(bs) && bs[j] == v {
				j++
			}
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the approximate two-sample KS critical value at
// significance alpha for sample sizes n and m (valid for large samples):
// c(alpha) * sqrt((n+m)/(n*m)) with c(alpha)=sqrt(-ln(alpha/2)/2).
func KSCritical(alpha float64, n, m int) float64 {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n)/float64(m))
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts. Panics if lengths differ or an expected entry is ≤ 0.
func ChiSquare(observed []uint64, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: chi-square length mismatch")
	}
	var x2 float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic(fmt.Sprintf("stats: non-positive expected count %v at %d", e, i))
		}
		d := float64(o) - e
		x2 += d * d / e
	}
	return x2
}

// ChiSquarePValue returns P(X ≥ x2) for a chi-square distribution with df
// degrees of freedom: 1 − P(df/2, x2/2) where P is the regularized lower
// incomplete gamma.
func ChiSquarePValue(x2 float64, df int) float64 {
	if df <= 0 {
		panic("stats: chi-square with non-positive df")
	}
	if x2 <= 0 {
		return 1
	}
	return 1 - RegularizedGammaP(float64(df)/2, x2/2)
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete gamma
// function, via the classical series (x < a+1) / continued fraction
// (x ≥ a+1) split of Numerical Recipes, using math.Lgamma for the prefactor.
func RegularizedGammaP(a, x float64) float64 {
	if a <= 0 {
		panic("stats: RegularizedGammaP needs a > 0")
	}
	if x < 0 {
		panic("stats: RegularizedGammaP needs x >= 0")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Histogram is a fixed-bin histogram over [lo, hi); values outside the range
// land in saturating edge bins so no observation is silently dropped.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	total  uint64
}

// NewHistogram builds a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, n)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.total++
}

// Counts returns the bin counts (shared slice; do not mutate).
func (h *Histogram) Counts() []uint64 { return h.bins }

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}

// RelativeError returns |estimate − truth| / truth. truth must be nonzero.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		panic("stats: relative error against zero truth")
	}
	return math.Abs(estimate-truth) / math.Abs(truth)
}

// SignedRelativeError returns (estimate − truth) / truth.
func SignedRelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		panic("stats: relative error against zero truth")
	}
	return (estimate - truth) / truth
}

// TotalVariation returns ½·Σ|p_i − q_i| for two distributions given as
// aligned probability vectors. Panics if lengths differ. Used to validate
// Monte-Carlo simulators against exact dynamic-programming distributions.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: total variation length mismatch")
	}
	var tv float64
	for i := range p {
		tv += math.Abs(p[i] - q[i])
	}
	return tv / 2
}

// NormalizeCounts converts a histogram of counts into a probability vector.
// Panics on an empty histogram.
func NormalizeCounts(counts []uint64) []float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		panic("stats: normalizing empty histogram")
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// BinomialCI returns the Wilson score interval at z standard deviations for
// k successes out of n trials. Used to put honest error bars on empirical
// failure probabilities (which are tiny, where the normal interval breaks).
func BinomialCI(k, n uint64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	den := 1 + z2/nf
	center := (p + z2/(2*nf)) / den
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
