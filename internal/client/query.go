package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"

	"repro/internal/engine"
	"repro/internal/snapcodec"
)

// QueryKind selects what a Query computes.
type QueryKind string

const (
	// KindEstimate answers one key's estimate (Result.Estimate).
	KindEstimate QueryKind = "estimate"
	// KindEstimateAll answers every key's estimate (Result.Estimates),
	// stitched partition by partition from each partition's own replicas —
	// the authoritative copy of each range, not one node's view of all.
	KindEstimateAll QueryKind = "estimates"
	// KindTopK answers the cluster-wide top-k (Result.TopK): every
	// partition's replicas report their partition-local top k, and the
	// disjoint reports merge client-side by concatenate-sort-truncate.
	KindTopK QueryKind = "topk"
	// KindDistinct answers the cluster-wide unique-key count
	// (Result.Estimate) on distinct-engine clusters: partitions tile
	// disjoint key ranges, so each partition's cardinality comes from a
	// replica that owns it and the disjoint scalars sum client-side.
	KindDistinct QueryKind = "distinct"
	// KindF2 answers the cluster-wide second frequency moment
	// (Result.Estimate) on f2-engine clusters, summed per partition the
	// same way.
	KindF2 QueryKind = "f2"
)

// QueryOptions parameterizes a Query. Zero values mean "not set"; which
// fields are required depends on Kind.
type QueryOptions struct {
	Kind QueryKind
	// Key is the key to estimate (KindEstimate).
	Key int
	// K is how many entries to return (KindTopK).
	K int
	// Window scopes the answer to the trailing window on window-engine
	// clusters — a duration ("5m") or bucket count ("3"), forwarded
	// verbatim as ?window=. Other engines answer 400. Empty = all time.
	Window string
	// Transport is reserved: queries always travel HTTP, because the wire
	// protocol (internal/wire) carries ingest only. "" and TransportHTTP
	// are accepted; anything else errors rather than silently downgrading.
	Transport string
}

// Result is a Query's answer; the field matching the Kind is set.
type Result struct {
	Estimate  float64        // KindEstimate
	Estimates []float64      // KindEstimateAll
	TopK      []engine.Entry // KindTopK
}

// Query runs one read against the cluster, routing each partition's portion
// to a replica that owns it and failing over through replica sets. It is
// the single entry point behind the deprecated Estimate/EstimateAll/TopK/
// EstimateWindow/TopKWindow wrappers; ctx bounds every HTTP request the
// query issues.
func (c *Client) Query(ctx context.Context, opts QueryOptions) (Result, error) {
	switch opts.Transport {
	case "", TransportHTTP, TransportAuto:
	default:
		return Result{}, fmt.Errorf("client: query transport %q unsupported (reads travel HTTP)", opts.Transport)
	}
	switch opts.Kind {
	case KindEstimate:
		est, err := c.estimate(ctx, opts.Key, opts.Window)
		return Result{Estimate: est}, err
	case KindEstimateAll:
		ests, err := c.estimateAll(ctx, opts.Window)
		return Result{Estimates: ests}, err
	case KindTopK:
		top, err := c.topK(ctx, opts.K, opts.Window)
		return Result{TopK: top}, err
	case KindDistinct:
		est, err := c.scalarSum(ctx, "distinct", opts.Window)
		return Result{Estimate: est}, err
	case KindF2:
		est, err := c.scalarSum(ctx, "f2", opts.Window)
		return Result{Estimate: est}, err
	default:
		return Result{}, fmt.Errorf("client: unknown query kind %q", opts.Kind)
	}
}

// StatusError is a node's non-200 answer with the status preserved, so
// routing logic can tell "not the right node" (421, a partition mid-
// rebalance) from a real fault.
type StatusError struct {
	URL  string
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s: status %d: %s", e.URL, e.Code, e.Msg)
}

// getJSON fetches url into out, enforcing ctx and a body cap.
func (c *Client) getJSON(ctx context.Context, url string, limit int64, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusMisdirectedRequest {
			c.stats.MisdirectedRetries++
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{URL: url, Code: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(io.LimitReader(resp.Body, limit)).Decode(out)
}

func (c *Client) estimate(ctx context.Context, k int, window string) (float64, error) {
	if k < 0 || k >= c.info.N {
		return 0, fmt.Errorf("client: key %d out of range [0,%d)", k, c.info.N)
	}
	q := ""
	if window != "" {
		q = "?window=" + url.QueryEscape(window)
	}
	// Two passes through the replica set: if the first pass finds no warm
	// owner (a 421 mid-rebalance, a dead node, a ring that moved under our
	// cache), refresh the ring and re-route once before giving up.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		for _, rep := range c.replicasFor(k) {
			var out struct {
				Estimate float64 `json:"estimate"`
			}
			if err := c.getJSON(ctx, fmt.Sprintf("%s/estimate/%d%s", rep, k, q), 4096, &out); err != nil {
				lastErr = err
				continue
			}
			return out.Estimate, nil
		}
		if attempt == 0 {
			if err := c.Refresh(); err != nil || k >= c.info.N {
				break
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("empty ring")
	}
	return 0, fmt.Errorf("client: estimate key %d: %w", k, lastErr)
}

// estimateAll stitches the full estimate vector: each partition's range
// [lo, hi) comes from that partition's replicas (primary first), so every
// value is read from a node that owns it.
func (c *Client) estimateAll(ctx context.Context, window string) ([]float64, error) {
	q := ""
	if window != "" {
		q = "?window=" + url.QueryEscape(window)
	}
	n0, parts0 := c.info.N, c.info.Partitions
	all := make([]float64, n0)
	// One node answers for every partition it owns; cache its full vector
	// so a 3-node ring costs 3 GETs, not one per partition.
	vectors := make(map[string][]float64)
	fetch := func(rep string) ([]float64, error) {
		if v, ok := vectors[rep]; ok {
			return v, nil
		}
		var out struct {
			Estimates []float64 `json:"estimates"`
		}
		if err := c.getJSON(ctx, rep+"/estimates"+q, 1<<28, &out); err != nil {
			return nil, err
		}
		if len(out.Estimates) != n0 {
			return nil, fmt.Errorf("%s: estimate vector has %d keys, ring says %d", rep, len(out.Estimates), n0)
		}
		vectors[rep] = out.Estimates
		return out.Estimates, nil
	}
	refreshed := false
	for p := 0; p < parts0; p++ {
		lo, hi := snapcodec.PartitionRange(n0, parts0, p)
		var lastErr error
		ok := false
		for pass := 0; pass < 2 && !ok; pass++ {
			for _, rep := range c.reps[p] {
				v, err := fetch(rep)
				if err != nil {
					lastErr = err
					continue
				}
				copy(all[lo:hi], v[lo:hi])
				ok = true
				break
			}
			if ok || refreshed || pass > 0 {
				break
			}
			// Same one-refresh policy as topK: re-route once on a stale
			// ring, but refuse a reshaped cluster — mixed tilings would
			// stitch overlapping ranges.
			if err := c.Refresh(); err != nil {
				break
			}
			refreshed = true
			if c.info.N != n0 || c.info.Partitions != parts0 {
				return nil, fmt.Errorf("client: estimates partition %d: cluster reshaped mid-query (%d keys/%d partitions → %d/%d)",
					p, n0, parts0, c.info.N, c.info.Partitions)
			}
		}
		if !ok {
			if lastErr == nil {
				lastErr = errors.New("empty replica set")
			}
			return nil, fmt.Errorf("client: estimates partition %d: %w", p, lastErr)
		}
	}
	return all, nil
}

func (c *Client) topK(ctx context.Context, k int, window string) ([]engine.Entry, error) {
	if k <= 0 {
		return nil, fmt.Errorf("client: k = %d", k)
	}
	var all []engine.Entry
	n0, parts0 := c.info.N, c.info.Partitions
	for p := 0; p < parts0; p++ {
		entries, err := c.partitionTopK(ctx, k, p, window, c.reps[p])
		if err != nil {
			// One refresh: the ring may have moved under us. Entries
			// already gathered assume the (N, Partitions) tiling the query
			// started with — if the refreshed cluster is reshaped, ranges
			// would overlap and keys double-count, so fail instead.
			if rerr := c.Refresh(); rerr == nil {
				if c.info.N != n0 || c.info.Partitions != parts0 {
					return nil, fmt.Errorf("client: topk partition %d: cluster reshaped mid-query (%d keys/%d partitions → %d/%d)",
						p, n0, parts0, c.info.N, c.info.Partitions)
				}
				entries, err = c.partitionTopK(ctx, k, p, window, c.reps[p])
			}
			if err != nil {
				return nil, fmt.Errorf("client: topk partition %d: %w", p, err)
			}
		}
		all = append(all, entries...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Estimate != all[j].Estimate {
			return all[i].Estimate > all[j].Estimate
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// scalarSum computes a cluster-wide scalar (distinct cardinality, F2
// moment) by summing per-partition answers: partitions tile disjoint key
// ranges, so per-partition scalars are additive, and each comes from a
// replica that owns the range. Same one-refresh reshape guard as topK —
// a mid-query retiling would sum overlapping ranges.
func (c *Client) scalarSum(ctx context.Context, path, window string) (float64, error) {
	var total float64
	n0, parts0 := c.info.N, c.info.Partitions
	for p := 0; p < parts0; p++ {
		v, err := c.partitionScalar(ctx, path, p, window, c.reps[p])
		if err != nil {
			if rerr := c.Refresh(); rerr == nil {
				if c.info.N != n0 || c.info.Partitions != parts0 {
					return 0, fmt.Errorf("client: %s partition %d: cluster reshaped mid-query (%d keys/%d partitions → %d/%d)",
						path, p, n0, parts0, c.info.N, c.info.Partitions)
				}
				v, err = c.partitionScalar(ctx, path, p, window, c.reps[p])
			}
			if err != nil {
				return 0, fmt.Errorf("client: %s partition %d: %w", path, p, err)
			}
		}
		total += v
	}
	return total, nil
}

// partitionScalar asks p's replicas (primary first) for the partition's
// scalar estimate, optionally window-scoped.
func (c *Client) partitionScalar(ctx context.Context, path string, p int, window string, reps []string) (float64, error) {
	q := ""
	if window != "" {
		q = "&window=" + url.QueryEscape(window)
	}
	var lastErr error
	for _, rep := range reps {
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		if err := c.getJSON(ctx, fmt.Sprintf("%s/%s?partition=%d%s", rep, path, p, q), 4096, &out); err != nil {
			lastErr = err
			continue
		}
		return out.Estimate, nil
	}
	if lastErr == nil {
		lastErr = errors.New("empty replica set")
	}
	return 0, lastErr
}

// partitionTopK asks p's replicas (primary first) for the partition's top
// k entries, optionally window-scoped.
func (c *Client) partitionTopK(ctx context.Context, k, p int, window string, reps []string) ([]engine.Entry, error) {
	q := ""
	if window != "" {
		q = "&window=" + url.QueryEscape(window)
	}
	var lastErr error
	for _, rep := range reps {
		var out struct {
			TopK []engine.Entry `json:"topk"`
		}
		if err := c.getJSON(ctx, fmt.Sprintf("%s/topk?k=%d&partition=%d%s", rep, k, p, q), 1<<22, &out); err != nil {
			lastErr = err
			continue
		}
		return out.TopK, nil
	}
	if lastErr == nil {
		lastErr = errors.New("empty replica set")
	}
	return nil, lastErr
}
