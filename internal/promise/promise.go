// Package promise implements the decision subroutine from the paper's
// Subsection 1.2 that Algorithm 1 is built from: given a threshold T > 1
// and ε ∈ (0, 1), decide whether N < (1−ε/10)·T or N > (1+ε/10)·T, under
// the promise that one of the two holds.
//
// The procedure: store a counter Y, sample each increment with probability
// α = min{1, C·ln(1/η)/(ε²T)}, and at query time declare "N > (1+ε/10)T"
// iff Y > αT. A Chernoff bound gives correctness with probability ≥ 1−η in
// O(log(1/ε) + log log(1/η)) bits — the full counter then solves a sequence
// of these promise problems at geometrically growing thresholds (see
// internal/core).
//
// The package exists because the paper presents this decision problem as
// the conceptual core of its algorithm; having it standalone makes the
// reduction testable in isolation (and makes the ε²-vs-ε³ subtlety of
// line 10 of Algorithm 1 concrete: the decision version needs only ε²).
package promise

import (
	"fmt"
	"math"

	"repro/internal/counter"
	"repro/internal/xrand"
)

// DefaultC is the Chernoff constant; ≥ 3 suffices asymptotically, 8 gives
// comfortable margins.
const DefaultC = 8

// Decider solves one promise instance.
type Decider struct {
	t     uint64  // threshold T
	eps   float64 // promise gap parameter
	alpha float64 // sampling probability (rounded up to a dyadic, per Remark 2.2)
	tExp  uint    // α = 2^-tExp
	thr   uint64  // ⌊α·T⌋
	y     uint64
	rng   *xrand.Rand
}

// New returns a Decider for threshold t, gap ε, and failure budget η, with
// the default constant. The Chernoff analysis needs the deviation margin
// times √(αT) to dominate; with C = DefaultC the guarantee holds at Θ(ε)
// margins, and the paper's full ε/10 margin needs the larger universal
// constant (≈ 300·DefaultC/8) available through NewWithC.
func New(t uint64, eps, eta float64, rng *xrand.Rand) *Decider {
	return NewWithC(t, eps, eta, DefaultC, rng)
}

// NewWithC returns a Decider with an explicit Chernoff constant C ≥ 1.
func NewWithC(t uint64, eps, eta, c float64, rng *xrand.Rand) *Decider {
	if t < 2 {
		panic(fmt.Sprintf("promise: threshold %d < 2", t))
	}
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("promise: eps = %v out of (0, 1)", eps))
	}
	if !(eta > 0 && eta < 1) {
		panic(fmt.Sprintf("promise: eta = %v out of (0, 1)", eta))
	}
	if c < 1 {
		panic(fmt.Sprintf("promise: C = %v below 1", c))
	}
	if rng == nil {
		panic("promise: nil rng")
	}
	alphaRaw := c * math.Log(1/eta) / (eps * eps * float64(t))
	var tExp uint
	if alphaRaw < 1 {
		tExp = uint(math.Floor(-math.Log2(alphaRaw)))
		if tExp > 62 {
			tExp = 62
		}
	}
	alpha := math.Ldexp(1, -int(tExp))
	thr := uint64(math.Floor(alpha * float64(t)))
	return &Decider{t: t, eps: eps, alpha: alpha, tExp: tExp, thr: thr, rng: rng}
}

// Increment records one event: while Y ≤ ⌊αT⌋ it is sampled into Y with
// probability α; once Y exceeds the threshold the decision is pinned and
// further events are ignored ("else do nothing" in the paper), which is
// what bounds Y — and hence the state — by ⌊αT⌋+1.
func (d *Decider) Increment() {
	if d.y > d.thr {
		return
	}
	if d.rng.BernoulliPow2(d.tExp) {
		d.y++
	}
}

// IncrementBy records n events via geometric skip-ahead.
func (d *Decider) IncrementBy(n uint64) {
	if d.tExp == 0 {
		room := d.thr + 1 - d.y
		if d.y > d.thr {
			return
		}
		if n < room {
			d.y += n
		} else {
			d.y = d.thr + 1
		}
		return
	}
	p := math.Ldexp(1, -int(d.tExp))
	for n > 0 && d.y <= d.thr {
		z := d.rng.Geometric(p)
		if z > n {
			return
		}
		n -= z
		d.y++
	}
}

// Above reports the decision: true means "N > (1+ε/10)·T".
func (d *Decider) Above() bool { return d.y > d.thr }

// StateBits returns the Remark 2.2 accounting: ⌈log2(Y+1)⌉ bits of counter
// plus ⌈log2(t+1)⌉ bits for the dyadic sampling exponent.
func (d *Decider) StateBits() int {
	return counter.BitLen(d.y) + counter.BitLen(uint64(d.tExp))
}

// MaxStateBits returns the widest the state can get: Y is bounded by its
// decision threshold plus the overshoot the decider tolerates before the
// answer is pinned, so a fixed-width register of this size always suffices.
func (d *Decider) MaxStateBits() int {
	return counter.BitLen(d.thr+1) + counter.BitLen(uint64(d.tExp))
}

// Alpha returns the (dyadic) sampling probability.
func (d *Decider) Alpha() float64 { return d.alpha }

// Threshold returns T.
func (d *Decider) Threshold() uint64 { return d.t }
