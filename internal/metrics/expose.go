package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// joinValues builds the canonical child key from label values. \x00 is
// fine as a separator because label values are escaped only at render.
func joinValues(values []string) string {
	return strings.Join(values, "\x00")
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func mustValidName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic("metrics: invalid metric name " + strconv.Quote(name))
		}
	}
}

func mustValidLabel(name string) {
	if name == "" {
		panic("metrics: empty label name")
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic("metrics: invalid label name " + strconv.Quote(name))
		}
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for the family's label names and a
// child's values, plus any extra pairs (used for histogram le). Returns
// "" when there are no pairs.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in name order as Prometheus text
// exposition format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		_, cs := f.snapshotChildren()
		if len(cs) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range cs {
			switch c := c.(type) {
			case *Counter:
				bw.WriteString(f.name)
				bw.WriteString(labelString(f.labels, c.labels, "", ""))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(c.Value(), 10))
				bw.WriteByte('\n')
			case *Gauge:
				bw.WriteString(f.name)
				bw.WriteString(labelString(f.labels, c.labels, "", ""))
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(c.Value()))
				bw.WriteByte('\n')
			case *gaugeFunc:
				bw.WriteString(f.name)
				bw.WriteString(labelString(f.labels, c.labels, "", ""))
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(c.fn()))
				bw.WriteByte('\n')
			case *Histogram:
				// Cumulative buckets. Bucket counts are read before the
				// total, so under concurrent Observe the rendered +Inf
				// cumulative count can trail _count by in-flight
				// observations; both are monotone so scrapes stay sane.
				var cum uint64
				for i, ub := range c.bounds {
					cum += c.counts[i].Load()
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					bw.WriteString(labelString(f.labels, c.labels, "le", formatFloat(ub)))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(cum, 10))
					bw.WriteByte('\n')
				}
				cum += c.inf.Load()
				bw.WriteString(f.name)
				bw.WriteString("_bucket")
				bw.WriteString(labelString(f.labels, c.labels, "le", "+Inf"))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')

				bw.WriteString(f.name)
				bw.WriteString("_sum")
				bw.WriteString(labelString(f.labels, c.labels, "", ""))
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(math.Float64frombits(c.sumBits.Load())))
				bw.WriteByte('\n')

				bw.WriteString(f.name)
				bw.WriteString("_count")
				bw.WriteString(labelString(f.labels, c.labels, "", ""))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum, 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
