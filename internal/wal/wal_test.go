package wal

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/shardbank"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func zipfBatches(n, batches, batchLen int, seed uint64) [][]int {
	src := stream.NewZipf(uint64(n), 1.05, xrand.NewSeeded(seed))
	out := make([][]int, batches)
	for i := range out {
		b := make([]int, batchLen)
		for j := range b {
			b[j] = int(src.Next())
		}
		out[i] = b
	}
	return out
}

func collect(t *testing.T, dir string, fromSeq uint64) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := Replay(dir, fromSeq, func(r Record) error {
		// Deep-copy: Blob aliases the segment read buffer.
		cp := Record{Type: r.Type, Keys: append([]int(nil), r.Keys...), Blob: bytes.Clone(r.Blob)}
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	batches := zipfBatches(1000, 50, 64, 1)
	for _, b := range batches {
		if err := l.AppendBatch(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	blob := []byte("snapcodec-blob-stand-in")
	if err := l.AppendMerge(blob); err != nil {
		t.Fatalf("append merge: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, stats := collect(t, dir, 0)
	if stats.Torn {
		t.Fatalf("clean log reported torn tail: %+v", stats)
	}
	if len(recs) != len(batches)+1 {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches)+1)
	}
	for i, b := range batches {
		if recs[i].Type != RecBatch {
			t.Fatalf("record %d type %d", i, recs[i].Type)
		}
		if fmt.Sprint(recs[i].Keys) != fmt.Sprint(b) {
			t.Fatalf("record %d keys mismatch", i)
		}
	}
	last := recs[len(recs)-1]
	if last.Type != RecMerge || !bytes.Equal(last.Blob, blob) {
		t.Fatalf("merge record mismatch: %+v", last)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	batches := zipfBatches(1000, 40, 32, 2)
	for _, b := range batches {
		if err := l.AppendBatch(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	segs, err := l.Segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected auto-rotation to create ≥3 segments, got %v", segs)
	}
	// All records survive replay across segment boundaries.
	recs, _ := collect(t, dir, 0)
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches))
	}

	// Explicit rotate = checkpoint boundary. Everything before newSeg is
	// garbage once the checkpoint exists.
	newSeg, err := l.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	extra := zipfBatches(1000, 5, 32, 3)
	for _, b := range extra {
		if err := l.AppendBatch(b); err != nil {
			t.Fatalf("append post-rotate: %v", err)
		}
	}
	if err := l.TruncateBefore(newSeg); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	segs, _ = l.Segments()
	for _, s := range segs {
		if s < newSeg {
			t.Fatalf("segment %d survived TruncateBefore(%d)", s, newSeg)
		}
	}
	recs, _ = collect(t, dir, newSeg)
	if len(recs) != len(extra) {
		t.Fatalf("post-checkpoint replay saw %d records, want %d", len(recs), len(extra))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// The crash-recovery contract: truncate the final segment at EVERY possible
// byte boundary (simulating a kill -9 mid-write) and verify that replay
// yields exactly some prefix of the appended records — never an error, never
// a corrupted record, never a record that was not appended.
func TestTornTailEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	batches := zipfBatches(100, 8, 4, 4)
	for _, b := range batches {
		if err := l.AppendBatch(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	path := segPath(dir, segs[0])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		stats, err := Replay(dir, 0, func(r Record) error {
			if fmt.Sprint(r.Keys) != fmt.Sprint(batches[got]) {
				t.Fatalf("cut=%d: record %d has wrong keys", cut, got)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if got > len(batches) {
			t.Fatalf("cut=%d: replayed %d records from %d appended", cut, got, len(batches))
		}
		if cut == len(full) && (got != len(batches) || stats.Torn) {
			t.Fatalf("uncut file replayed %d/%d records, torn=%v", got, len(batches), stats.Torn)
		}
		if cut < len(full) && got == len(batches) && !stats.Torn && cut < len(full) {
			// Truncation inside the file but all records intact can only
			// happen when the cut removed zero bytes of record data — i.e.
			// never, since cut < len(full) removes tail bytes of the last
			// record or its frame.
			t.Fatalf("cut=%d: lost bytes but replay saw every record and no torn flag", cut)
		}
	}
}

// Corruption in a non-final segment must be an error, not a silent stop.
func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, b := range zipfBatches(100, 4, 8, 5) {
		if err := l.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range zipfBatches(100, 4, 8, 6) {
		if err := l.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v", segs)
	}
	// Flip a payload byte in the FIRST segment.
	path := segPath(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("corruption in non-final segment replayed cleanly")
	}
}

// Group commit under concurrency: many goroutines appending in parallel must
// all become durable, and replay must see every batch exactly once.
func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Batch content identifies (writer, i) for the accounting
				// below.
				if err := l.AppendBatch([]int{w, i}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seen := make(map[[2]int]bool)
	_, err = Replay(dir, 0, func(r Record) error {
		if len(r.Keys) != 2 {
			return fmt.Errorf("bad record %v", r.Keys)
		}
		k := [2]int{r.Keys[0], r.Keys[1]}
		if seen[k] {
			return fmt.Errorf("duplicate record %v", k)
		}
		seen[k] = true
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d unique records, want %d", len(seen), writers*perWriter)
	}
}

// The end-to-end recovery property the daemon relies on: a fresh bank built
// from the same seed, replaying the WAL (including a torn tail), reproduces
// the reference bank that applied the surviving prefix — register for
// register.
func TestCrashRecoveryMatchesReferenceBank(t *testing.T) {
	const n = 500
	alg := bank.NewMorrisAlg(0.02, 12)
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	batches := zipfBatches(n, 30, 64, 7)
	for _, b := range batches {
		if err := l.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := segPath(dir, segs[len(segs)-1])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Kill mid-write: chop the tail at a byte that is inside some record.
	for _, cut := range []int{len(full) - 3, len(full) - 40, len(full) / 2} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Recovered bank: fresh from seed, replay whatever survived.
		rec := shardbank.New(n, alg, 8, 42)
		applied := 0
		if _, err := Replay(dir, 0, func(r Record) error {
			rec.IncrementBatch(r.Keys)
			applied++
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		// Reference bank: the same seed applying the surviving prefix
		// directly.
		ref := shardbank.New(n, alg, 8, 42)
		for i := 0; i < applied; i++ {
			ref.IncrementBatch(batches[i])
		}
		for i := 0; i < n; i++ {
			if got, want := rec.Register(i), ref.Register(i); got != want {
				t.Fatalf("cut=%d: register %d = %d after recovery, want %d", cut, i, got, want)
			}
		}
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.AppendBatch([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	first := l1.ActiveSegment()
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ActiveSegment() <= first {
		t.Fatalf("reopen reused segment %d", l2.ActiveSegment())
	}
	if err := l2.AppendBatch([]int{3}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records across reopen, want 2", len(recs))
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]int{1}); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("rotate on closed log succeeded")
	}
}

// BenchmarkAppendBatch is the -fsync policy comparison row: the same batched
// append under always (fsync per group commit), interval (background fsync),
// and off (page cache only).
func BenchmarkAppendBatch(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			keys := zipfBatches(100_000, 1, 1024, 1)[0]
			frame, _ := encodeRecord(nil, Record{Type: RecBatch, Keys: keys})
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendBatch(keys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

func BenchmarkGroupCommitParallel(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	keys := zipfBatches(100_000, 1, 256, 1)[0]
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.AppendBatch(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// RepairTorn must truncate a torn tail so the segment replays cleanly even
// once it is no longer the final segment.
func TestRepairTorn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := zipfBatches(100, 6, 8, 9)
	for _, b := range batches {
		if err := l.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := segPath(dir, segs[0])
	full, _ := os.ReadFile(path)

	for _, cut := range []int{len(full) - 5, 20, 3} { // mid-record, mid-first-record, mid-header
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		stats, err := Replay(dir, 0, func(Record) error { return nil })
		if err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		if !stats.Torn {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		if err := RepairTorn(dir, stats); err != nil {
			t.Fatalf("cut=%d: repair: %v", cut, err)
		}
		// After repair, simulate the segment becoming non-final: open a new
		// log (fresh segment above it), then replay everything.
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if err := l2.AppendBatch([]int{1}); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		n := 0
		stats2, err := Replay(dir, 0, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut=%d: replay after repair failed: %v", cut, err)
		}
		if stats2.Torn {
			t.Fatalf("cut=%d: still torn after repair", cut)
		}
		if n != stats.Records+1 {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, n, stats.Records+1)
		}
		// Reset for the next truncation point: drop the extra segments.
		extra, _ := listSegments(dir)
		for _, s := range extra[1:] {
			os.Remove(segPath(dir, s))
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// Under SyncInterval, a committed record must reach the segment file without
// any explicit Sync/Close — the background flusher writes it out within a few
// intervals. (Whether the bytes are fsynced is invisible to a test; what is
// observable, and what matters for crash recovery of the *process*, is that
// the buffer drains to the file.)
func TestSyncIntervalFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, l.ActiveSegment())
	deadline := time.Now().Add(2 * time.Second)
	for {
		fi, err := os.Stat(path)
		if err == nil && fi.Size() > 16 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never drained the staged record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Keys) != 3 {
		t.Fatalf("replayed %+v", got)
	}
}

// NoSync must keep behaving as the SyncOff alias.
func TestNoSyncAliasesSyncOff(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.opts.Policy != SyncOff {
		t.Fatalf("NoSync mapped to policy %v", l.opts.Policy)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMaxRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("snapshot bytes, opaque to the wal")
	if err := l.Append(Record{Type: RecMergeMax, Blob: blob}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != RecMergeMax || string(got[0].Blob) != string(blob) {
		t.Fatalf("replayed %+v", got)
	}
}

// RecOwn carries three partition lists plus the ring version; RecEvict
// carries one partition in Epoch. Both must survive a replay byte-exactly,
// including the empty-list cases.
func TestOwnershipRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: RecOwn, Epoch: 0xdeadbeefcafef00d, Keys: []int{1, 5}, Parts: []int{2}, Owned: []int{0, 1, 2, 5, 7}},
		{Type: RecOwn, Epoch: 7}, // all lists empty: a node owning nothing
		{Type: RecEvict, Epoch: 3},
	}
	for i, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if _, err := Replay(dir, 0, func(r Record) error {
		got = append(got, Record{
			Type:  r.Type,
			Epoch: r.Epoch,
			Keys:  append([]int(nil), r.Keys...),
			Parts: append([]int(nil), r.Parts...),
			Owned: append([]int(nil), r.Owned...),
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Type != w.Type || g.Epoch != w.Epoch ||
			fmt.Sprint(g.Keys) != fmt.Sprint(w.Keys) ||
			fmt.Sprint(g.Parts) != fmt.Sprint(w.Parts) ||
			fmt.Sprint(g.Owned) != fmt.Sprint(w.Owned) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, w)
		}
	}
}
