package engine

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/snapcodec"
)

func snapBytes(t *testing.T, e Engine) []byte {
	t.Helper()
	snap, err := e.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	data, err := snapcodec.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func wholeSnap(t *testing.T, e Engine) *snapcodec.Snapshot {
	t.Helper()
	snap, err := e.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the codec so merges see decoder output, not the
	// engine's own in-memory snapshot.
	blob, err := snapcodec.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapcodec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

// The HLL estimator stays within its theoretical relative standard error
// 1.04/√m of the true cardinality (3σ margin, fixed seed), across register
// counts, and duplicates never move the estimate — applying the same keys
// twice is a no-op on a cardinality sketch.
func TestDistinctErrorBound(t *testing.T) {
	const n, parts, uniques, seed = 60_000, 8, 50_000, 42
	for _, precision := range []int{8, 10, 12} {
		t.Run(fmt.Sprintf("p=%d", precision), func(t *testing.T) {
			e, err := NewDistinct(n, parts, precision, seed)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([]int, uniques)
			for i := range keys {
				keys[i] = i
			}
			for _, b := range batches(keys, 997) {
				e.ApplyBatch(b)
			}
			est, err := e.RangeEstimate(0, n)
			if err != nil {
				t.Fatal(err)
			}
			m := 1 << precision
			// Per-partition banks are independent; summing parts estimates
			// scales the variance like one bank of parts·m registers.
			bound := 3 * 1.04 / math.Sqrt(float64(parts*m))
			relErr := math.Abs(est-uniques) / uniques
			t.Logf("p=%d m=%d est=%.0f true=%d relErr=%.4f bound=%.4f", precision, m, est, uniques, relErr, bound)
			if relErr > bound {
				t.Fatalf("relative error %.4f exceeds 3σ bound %.4f (est %.0f, true %d)", relErr, bound, est, uniques)
			}
			// Idempotence: the same stream again changes nothing.
			before := snapBytes(t, e)
			for _, b := range batches(keys, 1009) {
				e.ApplyBatch(b)
			}
			if !bytes.Equal(before, snapBytes(t, e)) {
				t.Fatal("re-applying an already-seen stream changed the sketch")
			}
		})
	}
}

// The distinct joins are order-invariant and idempotent:
// merge(A,B) == merge(B,A) byte-for-byte, MergeMax is a fixed point on the
// second application, and the merged estimate covers the union.
func TestDistinctMergeOrderInvariance(t *testing.T) {
	const n, parts, precision, seed = 40_000, 8, 10, 7
	mk := func() *DistinctEngine {
		e, err := NewDistinct(n, parts, precision, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	keysA := make([]int, 15_000)
	for i := range keysA {
		keysA[i] = i
	}
	keysB := make([]int, 15_000)
	for i := range keysB {
		keysB[i] = 20_000 + i
	}
	for _, batch := range batches(keysA, 911) {
		a.ApplyBatch(batch)
	}
	for _, batch := range batches(keysB, 911) {
		b.ApplyBatch(batch)
	}
	snapA, snapB := wholeSnap(t, a), wholeSnap(t, b)

	ab, ba := mk(), mk()
	for _, step := range []struct {
		e     *DistinctEngine
		order []*snapcodec.Snapshot
	}{{ab, []*snapcodec.Snapshot{snapA, snapB}}, {ba, []*snapcodec.Snapshot{snapB, snapA}}} {
		for _, s := range step.order {
			if err := step.e.CheckPeer(s, true); err != nil {
				t.Fatal(err)
			}
			if err := step.e.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !bytes.Equal(snapBytes(t, ab), snapBytes(t, ba)) {
		t.Fatal("merge(A,B) and merge(B,A) diverge byte-wise")
	}
	est, err := ab.RangeEstimate(0, n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(keysA) + len(keysB))
	if rel := math.Abs(est-want) / want; rel > 3*1.04/math.Sqrt(float64(parts*(1<<precision))) {
		t.Fatalf("merged estimate %.0f too far from union cardinality %.0f (rel %.4f)", est, want, rel)
	}
	// MergeMax is idempotent: a second application of the same snapshot is
	// a byte-level fixed point.
	before := snapBytes(t, ab)
	if err := ab.MergeMax(snapA); err != nil {
		t.Fatal(err)
	}
	if err := ab.MergeMax(snapA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, snapBytes(t, ab)) {
		t.Fatal("MergeMax of an already-absorbed replica changed the sketch")
	}
}

// A windowed distinct engine forgets: a unique cohort counted w buckets
// ago drops out of the trailing-window estimate once the ring rotates past
// it, and the window=1 estimate only ever sees the current bucket's cohort.
func TestDistinctWindowExpiry(t *testing.T) {
	const n, parts, precision, buckets, seed = 10_000, 4, 12, 4, 11
	e, err := NewDistinctWindow(n, parts, precision, buckets, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	cohort := func(lo, size int) []int {
		out := make([]int, size)
		for i := range out {
			out[i] = lo + i
		}
		return out
	}
	tol := func(want float64) float64 {
		return 3 * 1.04 / math.Sqrt(float64(1<<precision)) * want * float64(parts)
	}
	// Epoch 0: cohort A (1000 uniques); epoch 1: cohort B (disjoint 1000).
	e.ApplyBatch(cohort(0, 1000))
	e.Advance(1)
	e.ApplyBatch(cohort(1000, 1000))

	full, err := e.RangeEstimateWindow(0, n, buckets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-2000) > tol(2000) {
		t.Fatalf("full window sees %.0f uniques, want ≈ 2000", full)
	}
	last, err := e.RangeEstimateWindow(0, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(last-1000) > tol(1000) {
		t.Fatalf("trailing bucket sees %.0f uniques, want ≈ 1000 (cohort B only)", last)
	}
	// Rotate cohort A out (epoch 0 leaves a 4-bucket ring at epoch 4).
	e.Advance(buckets)
	full, err = e.RangeEstimateWindow(0, n, buckets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-1000) > tol(1000) {
		t.Fatalf("after rotation the window sees %.0f uniques, want ≈ 1000 (cohort A expired)", full)
	}
	// Rotate everything out: the window must read empty again.
	e.Advance(buckets + 1)
	full, err = e.RangeEstimateWindow(0, n, buckets)
	if err != nil {
		t.Fatal(err)
	}
	if full != 0 {
		t.Fatalf("fully rotated window still reports %.0f uniques", full)
	}
}

// CheckPeer rejects every way a distinct snapshot can fail to join:
// cross-engine kinds, foreign hash seeds, different precisions, and
// windowed/cumulative flavor mismatches. Validate-before-stage demands the
// rejection happens here, never at merge time.
func TestDistinctCheckPeerRejects(t *testing.T) {
	const n, parts, precision, seed = 4000, 4, 8, 5
	e, err := NewDistinct(n, parts, precision, seed)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() (*snapcodec.Snapshot, error){
		"cross-engine": func() (*snapcodec.Snapshot, error) {
			o, err := NewTopK(n, e.Algorithm(), parts, 16, seed)
			if err != nil {
				return nil, err
			}
			return o.Snapshot(0, 0, false)
		},
		"seed-mismatch": func() (*snapcodec.Snapshot, error) {
			o, err := NewDistinct(n, parts, precision, seed+1)
			if err != nil {
				return nil, err
			}
			return o.Snapshot(0, 0, false)
		},
		"precision-mismatch": func() (*snapcodec.Snapshot, error) {
			o, err := NewDistinct(n, parts, precision+1, seed)
			if err != nil {
				return nil, err
			}
			return o.Snapshot(0, 0, false)
		},
		"windowed-mismatch": func() (*snapcodec.Snapshot, error) {
			o, err := NewDistinctWindow(n, parts, precision, 4, 0, seed)
			if err != nil {
				return nil, err
			}
			return o.Snapshot(0, 0, false)
		},
		"shape-mismatch": func() (*snapcodec.Snapshot, error) {
			o, err := NewDistinct(n, parts*2, precision, seed)
			if err != nil {
				return nil, err
			}
			return o.Snapshot(0, 0, false)
		},
	} {
		t.Run(name, func(t *testing.T) {
			snap, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := e.CheckPeer(snap, false); err == nil {
				t.Fatal("CheckPeer accepted an incompatible peer")
			}
			if err := e.CheckPeer(snap, true); err == nil {
				t.Fatal("CheckPeer(disjoint) accepted an incompatible peer")
			}
		})
	}
}
