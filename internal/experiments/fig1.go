package experiments

import (
	"fmt"

	"repro/internal/csuros"
	"repro/internal/morris"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Fig1Config parameterizes the Figure 1 reproduction. The zero value is
// filled with the paper's settings: 5000 trials per algorithm, 17 bits of
// counter state, N drawn uniformly from [500000, 999999].
type Fig1Config struct {
	Trials int
	Bits   int
	LowN   uint64
	HighN  uint64
	Seed   uint64
	// Points is the number of ECDF percentile rows in the table.
	Points int
}

func (c Fig1Config) withDefaults() Fig1Config {
	if c.Trials == 0 {
		c.Trials = 5000
	}
	if c.Bits == 0 {
		c.Bits = 17
	}
	if c.LowN == 0 {
		c.LowN = 500000
	}
	if c.HighN == 0 {
		c.HighN = 999999
	}
	if c.Points == 0 {
		c.Points = 20
	}
	return c
}

// Fig1Result carries the two error samples along with the rendered table,
// for callers (tests, CSV dumps) that need the raw series.
type Fig1Result struct {
	Table        Table
	MorrisErrors []float64
	CsurosErrors []float64
	MorrisA      float64
	CsurosD      int
}

// Fig1 reproduces the paper's Figure 1 (Section 4): empirical CDFs of the
// relative error of the Morris counter and of the simplified Algorithm 1
// (the Csűrös floating-point counter), both parameterized to use the same
// fixed number of state bits, over Trials runs with uniformly random totals.
//
// Expected shape (the paper's observation): the two CDFs nearly coincide,
// and at 17 bits neither algorithm's max relative error over 5000 runs is
// far from the ≈2.37% the authors report.
func Fig1(cfg Fig1Config) Fig1Result {
	cfg = cfg.withDefaults()
	rng := xrand.NewSeeded(cfg.Seed)
	a := morris.AForStateBits(cfg.Bits, cfg.HighN)
	d := csuros.MantissaBitsFor(cfg.Bits, cfg.HighN)

	morrisErrs := make([]float64, cfg.Trials)
	csurosErrs := make([]float64, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		n := rng.Range(cfg.LowN, cfg.HighN)
		m := morris.New(a, rng)
		m.IncrementBy(n)
		morrisErrs[i] = stats.RelativeError(m.Estimate(), float64(n))
		c := csuros.New(cfg.Bits, d, rng)
		c.IncrementBy(n)
		csurosErrs[i] = stats.RelativeError(c.Estimate(), float64(n))
	}

	mECDF := stats.NewECDF(morrisErrs)
	cECDF := stats.NewECDF(csurosErrs)
	tb := Table{
		ID:    "E1/fig1",
		Title: "Figure 1: empirical CDF of relative error, Morris vs simplified Algorithm 1 (Csűrös)",
		Columns: []string{
			"percentile", "morris rel.err", "csuros rel.err",
		},
	}
	for _, p := range percentiles(cfg.Points) {
		tb.AddRow(
			fmt.Sprintf("%.0f%%", 100*p),
			fmtPct(mECDF.Quantile(p)),
			fmtPct(cECDF.Quantile(p)),
		)
	}
	ks := stats.KolmogorovSmirnov(morrisErrs, csurosErrs)
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("trials=%d bits=%d N∈[%d,%d] morris a=%.3g csuros mantissa=%d",
			cfg.Trials, cfg.Bits, cfg.LowN, cfg.HighN, a, d),
		fmt.Sprintf("max rel.err: morris %s, csuros %s (paper: ≈2.37%% at 17 bits)",
			fmtPct(mECDF.Max()), fmtPct(cECDF.Max())),
		fmt.Sprintf("KS distance between the two error distributions: %.4f (curves nearly coincide)", ks),
	)
	return Fig1Result{
		Table:        tb,
		MorrisErrors: morrisErrs,
		CsurosErrors: csurosErrs,
		MorrisA:      a,
		CsurosD:      d,
	}
}

func percentiles(n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = float64(i+1) / float64(n)
	}
	return out
}
