package client

import (
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/snapcodec"
	"repro/internal/stream"
	"repro/internal/xrand"
)

type node struct {
	self string
	st   *server.Store
	cn   *cluster.Node
	srv  *http.Server
	done chan struct{}
}

const (
	testN     = 2000
	testParts = 8
)

func startNode(t *testing.T, rf int, join []string) *node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := server.Open(server.Config{
		Dir: dir, N: testN, Shards: 8,
		Alg:  bank.NewMorrisAlg(0.001, 14),
		Seed: 42, Partitions: testParts, NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	cn, err := cluster.New(st, cluster.Config{
		Self: self, Join: join, RF: rf,
		HintDir:             filepath.Join(dir, "hints"),
		GossipInterval:      50 * time.Millisecond,
		ReplInterval:        25 * time.Millisecond,
		AntiEntropyInterval: 100 * time.Millisecond,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &node{self: self, st: st, cn: cn, srv: &http.Server{Handler: cn.Handler()}, done: make(chan struct{})}
	go func() { defer close(n.done); n.srv.Serve(ln) }()
	cn.Start()
	t.Cleanup(func() {
		n.srv.Close()
		<-n.done
		n.cn.Stop()
		n.st.Close(false)
	})
	return n
}

func awaitCluster(t *testing.T, nodes []*node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if len(n.cn.Membership().AlivePeers()) != len(nodes)-1 {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never formed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClientRoutesToOwners(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster")
	}
	n0 := startNode(t, 1, nil)
	n1 := startNode(t, 1, []string{n0.self})
	n2 := startNode(t, 1, []string{n0.self})
	nodes := []*node{n0, n1, n2}
	awaitCluster(t, nodes)

	c, err := New(Config{Seeds: []string{n0.self}, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != testN || c.Partitions() != testParts {
		t.Fatalf("client shape %d/%d", c.N(), c.Partitions())
	}

	// Drive a Zipf stream; at RF=1 every key has exactly one owner, so a
	// correctly-routing client produces zero forwards on any node.
	truth := make([]uint64, testN)
	src := stream.NewZipf(testN, 1.05, xrand.NewSeeded(3))
	for i := 0; i < 40_000; i++ {
		k := int(src.Next())
		truth[k]++
		if err := c.Inc(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Registers must sit exactly where the ring says.
	ring := c.Ring()
	byID := map[string]*node{n0.self: n0, n1.self: n1, n2.self: n2}
	for p := 0; p < testParts; p++ {
		lo, hi := snapcodec.PartitionRange(testN, testParts, p)
		owner := byID[ring.Primary(p)]
		regs, err := owner.st.Bank().ExportRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, v := range regs {
			sum += v
		}
		var want uint64
		for k := lo; k < hi; k++ {
			want += truth[k]
		}
		if want > 0 && sum == 0 {
			t.Fatalf("partition %d: owner %s has empty registers for %d true events",
				p, ring.Primary(p), want)
		}
		// And nobody else got the keys (no forwarding happened).
		for _, other := range nodes {
			if other == owner {
				continue
			}
			oregs, err := other.st.Bank().ExportRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range oregs {
				if v != 0 {
					t.Fatalf("partition %d key %d: non-owner %s has register %d",
						p, lo+i, other.self, v)
				}
			}
		}
	}

	// Estimates come back sane through the client, too.
	var sumRel float64
	var hot int
	for k, tr := range truth {
		if tr < 500 {
			continue
		}
		est, err := c.Estimate(k)
		if err != nil {
			t.Fatal(err)
		}
		d := (est - float64(tr)) / float64(tr)
		if d < 0 {
			d = -d
		}
		sumRel += d
		hot++
	}
	if hot == 0 {
		t.Fatal("no hot keys")
	}
	if mean := sumRel / float64(hot); mean > 0.08 {
		t.Fatalf("mean relative error %.2f%% through client routing", 100*mean)
	}
}

// A client must survive the death of its routing target: batches fail over
// to another replica, which re-coordinates.
func TestClientFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster")
	}
	n0 := startNode(t, 2, nil)
	n1 := startNode(t, 2, []string{n0.self})
	nodes := []*node{n0, n1}
	awaitCluster(t, nodes)

	c, err := New(Config{Seeds: []string{n0.self, n1.self}, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Kill n1's HTTP front end; every key routed to it must fail over to n0
	// (which owns everything at RF=2 with 2 nodes).
	n1.srv.Close()
	<-n1.done
	for k := 0; k < testN; k++ {
		if err := c.Inc(k); err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// All events landed on n0.
	regs, err := n0.st.Bank().ExportRange(0, testN)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, v := range regs {
		if v == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Fatalf("%d keys lost after failover", zero)
	}
}
