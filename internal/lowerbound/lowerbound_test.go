package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMorrisMachineStepDistributions(t *testing.T) {
	m := NewMorrisMachine(4, 1) // base 2, 16 states
	// State 0: advance with probability 1.
	trs := m.Step(0)
	var pAdvance float64
	for _, tr := range trs {
		if tr.State == 1 {
			pAdvance = tr.P
		}
	}
	if pAdvance != 1 {
		t.Fatalf("Step(0) advance probability %v, want 1", pAdvance)
	}
	// State 3: advance with probability 2^-3.
	for _, tr := range m.Step(3) {
		switch tr.State {
		case 3:
			if math.Abs(tr.P-(1-0.125)) > 1e-12 {
				t.Fatalf("stay probability %v", tr.P)
			}
		case 4:
			if math.Abs(tr.P-0.125) > 1e-12 {
				t.Fatalf("advance probability %v", tr.P)
			}
		default:
			t.Fatalf("unexpected successor %d", tr.State)
		}
	}
	// Top state is absorbing.
	top := m.NumStates() - 1
	trs = m.Step(top)
	if len(trs) != 1 || trs[0].State != top || trs[0].P != 1 {
		t.Fatalf("top state not absorbing: %+v", trs)
	}
	// Probabilities sum to 1 in every state.
	for s := 0; s < m.NumStates(); s++ {
		var sum float64
		for _, tr := range m.Step(s) {
			sum += tr.P
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("state %d probabilities sum to %v", s, sum)
		}
	}
}

func TestMorrisMachineEstimate(t *testing.T) {
	m := NewMorrisMachine(4, 1)
	// N̂ = 2^X − 1 for a = 1.
	for s := 0; s < 10; s++ {
		want := math.Pow(2, float64(s)) - 1
		if got := m.Estimate(s); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Estimate(%d) = %v, want %v", s, got, want)
		}
	}
}

func TestStateBits(t *testing.T) {
	if got := StateBits(NewMorrisMachine(5, 1)); got != 5 {
		t.Fatalf("StateBits = %d, want 5", got)
	}
}

func TestDerandomizeMorrisStalls(t *testing.T) {
	// C_det advances while the advance probability exceeds 1/2, i.e. while
	// (1+a)^-X > 1/2, then stalls forever: exactly the collapse the proof
	// exploits. For a = 1 the advance probability from state 1 is exactly
	// 1/2, and the lexicographic tie-break keeps the machine at state 1.
	m := NewMorrisMachine(6, 1)
	d := Derandomize(m)
	tail, cycle := d.Rho()
	if len(cycle) != 1 {
		t.Fatalf("derandomized Morris cycle length %d, want 1 (absorbing)", len(cycle))
	}
	stall := cycle[0]
	if stall != 1 {
		t.Fatalf("stall state %d, want 1 (tie at p = 1/2 breaks low)", stall)
	}
	if len(tail) != 1 || tail[0] != 0 {
		t.Fatalf("tail = %v, want [0]", tail)
	}
}

func TestDerandomizeSmallBaseStallsNearLog(t *testing.T) {
	// With a < 1 the stall point is where (1+a)^-X first drops to ≤ 1/2,
	// i.e. X* = ⌈ln 2 / ln(1+a)⌉-ish.
	a := 0.1
	m := NewMorrisMachine(10, a)
	d := Derandomize(m)
	_, cycle := d.Rho()
	if len(cycle) != 1 {
		t.Fatalf("cycle length %d, want 1", len(cycle))
	}
	wantStall := int(math.Ceil(math.Log(2) / math.Log1p(a)))
	if diff := cycle[0] - wantStall; diff < -1 || diff > 1 {
		t.Fatalf("stall state %d, want ≈ %d", cycle[0], wantStall)
	}
}

func TestStateAfterMatchesIteration(t *testing.T) {
	m := NewMorrisMachine(8, 0.5)
	d := Derandomize(m)
	// Direct iteration for the first 2000 steps must agree with the
	// ρ-decomposition shortcut.
	s := 0
	for n := uint64(0); n <= 2000; n++ {
		if got := d.StateAfter(n); got != s {
			t.Fatalf("StateAfter(%d) = %d, want %d", n, got, s)
		}
		s = d.next[s]
	}
	// And it must answer huge n instantly.
	if got := d.StateAfter(1 << 60); got != d.StateAfter(1<<60+0) {
		t.Fatalf("inconsistent big-n state %d", got)
	}
}

func TestFindPumpingWitness(t *testing.T) {
	// 6-bit machine, T = 4096 = (2^6)²: the proof's regime 2^S ≤ √T.
	m := NewMorrisMachine(6, 1)
	d := Derandomize(m)
	const T = 4096
	w, ok := FindPumpingWitness(d, T)
	if !ok {
		t.Fatal("no witness found in the guaranteed regime")
	}
	if !(w.N1 >= 1 && w.N1 < w.N2 && w.N2 <= T/2) {
		t.Fatalf("witness N1=%d N2=%d outside [1, T/2]", w.N1, w.N2)
	}
	if !(w.N3 >= 2*T && w.N3 <= 4*T) {
		t.Fatalf("witness N3=%d outside [2T, 4T]", w.N3)
	}
	// The states really are identical — the indistinguishability is real.
	if d.StateAfter(w.N1) != w.State || d.StateAfter(w.N2) != w.State || d.StateAfter(w.N3) != w.State {
		t.Fatal("witness states are not actually equal")
	}
}

func TestFindPumpingWitnessRespectsKValidity(t *testing.T) {
	// N3 = N1 + k(N2−N1) for integer k ≥ 0 must hold.
	m := NewMorrisMachine(5, 0.3)
	d := Derandomize(m)
	w, ok := FindPumpingWitness(d, 1<<12)
	if !ok {
		t.Skip("no witness at this parameterization")
	}
	gap := w.N2 - w.N1
	if (w.N3-w.N1)%gap != 0 {
		t.Fatalf("N3 not reachable by pumping: N1=%d N2=%d N3=%d", w.N1, w.N2, w.N3)
	}
}

func TestFindPumpingWitnessTinyT(t *testing.T) {
	m := NewMorrisMachine(8, 1)
	d := Derandomize(m)
	if _, ok := FindPumpingWitness(d, 1); ok {
		t.Fatal("witness claimed for T = 1")
	}
}

func TestDFADistinguishErrorsMassive(t *testing.T) {
	// The derandomized counter stalls at state 1 (estimate 1), so it
	// answers "< T" everywhere: every high query fails.
	m := NewMorrisMachine(6, 1)
	d := Derandomize(m)
	res := DFADistinguishErrors(d, 1024)
	if res.HighErrors != int(2*1024+1) {
		t.Fatalf("HighErrors = %d, want all %d", res.HighErrors, 2*1024+1)
	}
	if res.FailureRate() < 0.5 {
		t.Fatalf("derandomized failure rate %v, want ≥ 0.5", res.FailureRate())
	}
}

func TestRandomizedMachineDistinguishesWithEnoughStates(t *testing.T) {
	// The *randomized* Morris machine with ample state easily solves the
	// promise problem — failure comes from derandomization or tiny S, not
	// from the algorithm.
	rng := xrand.NewSeeded(1)
	m := NewMorrisMachine(16, 0.01)
	res := MeasureDistinguish(m, 4096, 300, rng)
	if rate := res.FailureRate(); rate > 0.05 {
		t.Fatalf("well-resourced machine failure rate %v", rate)
	}
}

func TestUndersizedMachineFailsToDistinguish(t *testing.T) {
	// A 3-bit Morris(1) machine caps at X = 7, estimate ≤ 127; with
	// T = 4096 every high-side query must fail.
	rng := xrand.NewSeeded(2)
	m := NewMorrisMachine(3, 1)
	res := MeasureDistinguish(m, 4096, 300, rng)
	if rate := res.FailureRate(); rate < 0.4 {
		t.Fatalf("undersized machine failure rate %v, want ≈ 0.5", rate)
	}
}

func TestSimulateMatchesSimulateMorris(t *testing.T) {
	// The generic per-step simulator and the skip-ahead Morris simulator
	// must induce the same distribution of final states.
	rngA := xrand.NewSeeded(3)
	rngB := xrand.NewSeeded(4)
	m := NewMorrisMachine(8, 0.5)
	const n, trials = 2000, 3000
	countsA := make([]int, m.NumStates())
	countsB := make([]int, m.NumStates())
	for i := 0; i < trials; i++ {
		countsA[Simulate(m, n, rngA)]++
		countsB[SimulateMorris(m, n, rngB)]++
	}
	// Compare means of the state distribution.
	var meanA, meanB float64
	for s := 0; s < m.NumStates(); s++ {
		meanA += float64(s) * float64(countsA[s])
		meanB += float64(s) * float64(countsB[s])
	}
	meanA /= trials
	meanB /= trials
	if math.Abs(meanA-meanB) > 0.2 {
		t.Fatalf("state means differ: %v vs %v", meanA, meanB)
	}
}

func TestMeasureStateCounting(t *testing.T) {
	rng := xrand.NewSeeded(5)
	m := NewMorrisMachine(16, 0.005)
	res := MeasureStateCounting(m, 0.25, 1<<20, rng)
	if res.Probes == 0 {
		t.Fatal("no probes generated")
	}
	// A well-resourced machine recovers a constant fraction of probes, and
	// recovered probes occupy distinct states (2^S ≥ recovered argument).
	if res.Recovered < res.Probes/5 {
		t.Fatalf("recovered %d of %d probes, want ≥ 1/5", res.Recovered, res.Probes)
	}
	if res.DistinctStates > res.Recovered {
		t.Fatalf("distinct states %d exceeds recovered %d", res.DistinctStates, res.Recovered)
	}
	if res.DistinctStates == 0 {
		t.Fatal("no distinct states recorded")
	}
}

func TestStateCountingUndersizedRecoversFewer(t *testing.T) {
	rng := xrand.NewSeeded(6)
	big := MeasureStateCounting(NewMorrisMachine(16, 0.005), 0.25, 1<<20, rng)
	small := MeasureStateCounting(NewMorrisMachine(3, 1), 0.25, 1<<20, rng)
	if small.Recovered >= big.Recovered {
		t.Fatalf("3-bit machine recovered %d ≥ 16-bit machine %d", small.Recovered, big.Recovered)
	}
}

func TestNewMorrisMachinePanics(t *testing.T) {
	cases := []struct {
		bits int
		a    float64
	}{{0, 1}, {25, 1}, {4, 0}, {4, 1.5}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMorrisMachine(%d, %v) did not panic", c.bits, c.a)
				}
			}()
			NewMorrisMachine(c.bits, c.a)
		}()
	}
}

// Property: the ρ-decomposition is consistent — StateAfter(n) equals naive
// iteration for arbitrary small n on arbitrary machines.
func TestQuickRhoConsistency(t *testing.T) {
	f := func(bitsSeed, aSeed uint8, nSeed uint16) bool {
		bits := int(bitsSeed)%6 + 2
		a := float64(int(aSeed)%9+1) / 10
		m := NewMorrisMachine(bits, a)
		d := Derandomize(m)
		n := uint64(nSeed) % 5000
		s := 0
		for i := uint64(0); i < n; i++ {
			s = d.next[s]
		}
		return d.StateAfter(n) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
