// Package lowerbound makes the proof of the paper's Theorem 3.1 executable.
//
// The theorem says any counter with P(|N−N̂| > εN) < δ on {1,...,n} needs
// Ω(min{log n, log log n + log(1/ε) + log log(1/δ)}) bits. Its proof has two
// constructions, both finite and both implemented here:
//
//  1. Derandomization + pumping: view an S-bit counter as a randomized
//     automaton on 2^S states; replace every random transition by its
//     most-probable outcome (ties broken lexicographically) to get a DFA
//     C_det. Any DFA on 2^S ≤ √T states repeats a state within the first
//     T/2 increments (pigeonhole), and repeating states pump: the DFA is in
//     the same state after N₁ and after N₁ + k(N₂−N₁) increments for all k,
//     so some N₃ ∈ [2T, 4T] is indistinguishable from N₁ ≤ T/2 — the
//     counter cannot be correct on both.
//  2. State counting: with random bits fixed, a correct counter must land
//     in distinct states after N_j = ⌈(e^{16εj}−1)/ε⌉ increments for a
//     constant fraction of the j's, forcing 2^S ≥ Ω((1/ε)·log(εn+1)).
//
// The package provides the automaton abstraction, a faithful bounded-Morris
// automaton to instantiate it, the derandomization, cycle detection (Brent),
// pumping-witness search, and Monte-Carlo harnesses measuring how badly the
// derandomized and undersized machines actually fail — the empirical face
// of the lower bound.
package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Transition is one outcome of a randomized step: move to State with
// probability P.
type Transition struct {
	State int
	P     float64
}

// Machine is a randomized counter automaton with a finite state space —
// the model of computation in the proof of Theorem 3.1. States are
// 0..NumStates()−1; state 0 is the canonical initial state returned by a
// deterministic Init (randomized initial states add nothing for the
// machines studied here and keep the API small).
type Machine interface {
	// NumStates returns the size of the state space (≤ 2^S for an S-bit
	// algorithm).
	NumStates() int
	// Step returns the distribution of the next state from state s. The
	// probabilities must sum to 1.
	Step(s int) []Transition
	// Estimate returns the query answer N̂ from state s.
	Estimate(s int) float64
}

// StateBits returns S = ⌈log2(NumStates)⌉ for a machine.
func StateBits(m Machine) int {
	n := m.NumStates()
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// MorrisMachine is Morris(a) truncated to S bits: states are X ∈
// {0, ..., 2^S−1}; from X < top the machine moves to X+1 with probability
// (1+a)^-X, and the top state is absorbing. This is exactly the automaton
// an S-bit register implementation of the Morris counter realizes.
type MorrisMachine struct {
	a      float64
	lnBase float64
	states int
}

var _ Machine = (*MorrisMachine)(nil)

// NewMorrisMachine returns an S-bit bounded Morris(a) automaton.
func NewMorrisMachine(sBits int, a float64) *MorrisMachine {
	if sBits < 1 || sBits > 24 {
		panic(fmt.Sprintf("lowerbound: sBits = %d out of [1, 24] (state space must be enumerable)", sBits))
	}
	if !(a > 0 && a <= 1) {
		panic(fmt.Sprintf("lowerbound: a = %v out of (0, 1]", a))
	}
	return &MorrisMachine{a: a, lnBase: math.Log1p(a), states: 1 << uint(sBits)}
}

// NumStates implements Machine.
func (m *MorrisMachine) NumStates() int { return m.states }

// Step implements Machine.
func (m *MorrisMachine) Step(s int) []Transition {
	if s >= m.states-1 {
		return []Transition{{State: s, P: 1}}
	}
	p := math.Exp(-float64(s) * m.lnBase)
	return []Transition{{State: s, P: 1 - p}, {State: s + 1, P: p}}
}

// Estimate implements Machine: N̂ = ((1+a)^X − 1)/a.
func (m *MorrisMachine) Estimate(s int) float64 {
	return math.Expm1(float64(s)*m.lnBase) / m.a
}

// DFA is a derandomized counter: a deterministic transition function plus
// the original query map.
type DFA struct {
	next []int
	est  []float64
}

// Derandomize builds C_det from m exactly as in the proof: each transition
// goes to the most probable successor, ties broken toward the
// lexicographically (numerically) smallest state.
func Derandomize(m Machine) *DFA {
	n := m.NumStates()
	d := &DFA{next: make([]int, n), est: make([]float64, n)}
	for s := 0; s < n; s++ {
		best, bestP := -1, -1.0
		for _, tr := range m.Step(s) {
			if tr.P > bestP || (tr.P == bestP && tr.State < best) {
				best, bestP = tr.State, tr.P
			}
		}
		d.next[s] = best
		d.est[s] = m.Estimate(s)
	}
	return d
}

// NumStates returns the DFA's state count.
func (d *DFA) NumStates() int { return len(d.next) }

// Estimate returns the query answer from state s.
func (d *DFA) Estimate(s int) float64 { return d.est[s] }

// StateAfter returns the DFA state after n increments from state 0,
// in O(min(n, NumStates)) time by detecting the ρ-shape (tail + cycle) of
// the deterministic orbit and reducing n modulo the cycle length.
func (d *DFA) StateAfter(n uint64) int {
	tail, cycle := d.Rho()
	if n < uint64(len(tail)) {
		return tail[n]
	}
	return cycle[(n-uint64(len(tail)))%uint64(len(cycle))]
}

// Rho returns the orbit of state 0 split into its aperiodic tail and its
// cycle: the state after n steps is tail[n] for n < len(tail) and
// cycle[(n−len(tail)) mod len(cycle)] otherwise. Every deterministic orbit
// on a finite state space has this shape — the heart of the pumping
// argument.
func (d *DFA) Rho() (tail, cycle []int) {
	seenAt := make(map[int]int, len(d.next))
	var orbit []int
	s := 0
	for {
		if at, ok := seenAt[s]; ok {
			return orbit[:at], orbit[at:]
		}
		seenAt[s] = len(orbit)
		orbit = append(orbit, s)
		s = d.next[s]
	}
}

// PumpingWitness certifies indistinguishability: the DFA is in State after
// both N1 and N2 increments (N1 < N2 ≤ T/2), hence also after
// N3 = N1 + k(N2−N1) ∈ [2T, 4T] — so it answers identically for a count in
// [1, T/2] and one in [2T, 4T], which a (1±ε<1/2)-correct counter never may.
type PumpingWitness struct {
	N1, N2, N3 uint64
	State      int
}

// FindPumpingWitness searches for the proof's witness against threshold T.
// It succeeds whenever the orbit repeats a state within the first T/2 steps
// — guaranteed by pigeonhole when NumStates ≤ T/2, and in particular when
// 2^S ≤ √T as in the proof.
func FindPumpingWitness(d *DFA, T uint64) (PumpingWitness, bool) {
	if T < 2 {
		return PumpingWitness{}, false
	}
	tail, cycle := d.Rho()
	mu := uint64(len(tail))
	lambda := uint64(len(cycle))
	// First repeat: state cycle[0] occurs at step mu and again at mu+lambda.
	n1, n2 := mu, mu+lambda
	if n1 == 0 {
		// The proof needs N1 ≥ 1; shift one full cycle.
		n1, n2 = lambda, 2*lambda
	}
	if n2 > T/2 {
		return PumpingWitness{}, false
	}
	dGap := n2 - n1
	// Smallest k with N1 + k·gap ≥ 2T; then N3 ≤ 2T + gap ≤ 2T + T/2 ≤ 4T.
	k := (2*T - n1 + dGap - 1) / dGap
	n3 := n1 + k*dGap
	if n3 < 2*T || n3 > 4*T {
		return PumpingWitness{}, false
	}
	return PumpingWitness{N1: n1, N2: n2, N3: n3, State: cycle[0]}, true
}

// Simulate runs the randomized machine for n increments from state 0 and
// returns the final state.
func Simulate(m Machine, n uint64, rng *xrand.Rand) int {
	s := 0
	for i := uint64(0); i < n; i++ {
		u := rng.Float64()
		acc := 0.0
		trs := m.Step(s)
		nxt := trs[len(trs)-1].State
		for _, tr := range trs {
			acc += tr.P
			if u < acc {
				nxt = tr.State
				break
			}
		}
		s = nxt
	}
	return s
}

// SimulateMorris runs a MorrisMachine for n increments in O(ΔX) expected
// time using geometric skip-ahead (identical law; see internal/morris).
func SimulateMorris(m *MorrisMachine, n uint64, rng *xrand.Rand) int {
	s := 0
	for n > 0 && s < m.states-1 {
		p := math.Exp(-float64(s) * m.lnBase)
		if p < 1e-300 {
			break
		}
		z := rng.Geometric(p)
		if z > n {
			break
		}
		n -= z
		s++
	}
	return s
}

// DistinguishResult reports how well a counter separates N ∈ [1, T/2] from
// N ∈ [2T, 4T] — the promise problem at the center of the proof.
type DistinguishResult struct {
	T          uint64
	Queries    int // total promise-problem instances examined
	LowErrors  int // N ∈ [1, T/2] answered N̂ ≥ T
	HighErrors int // N ∈ [2T, 4T] answered N̂ < T
}

// FailureRate returns the overall error fraction.
func (r DistinguishResult) FailureRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.LowErrors+r.HighErrors) / float64(r.Queries)
}

// MeasureDistinguish Monte-Carlo-measures the distinguishing error of a
// MorrisMachine at threshold T with `trials` random counts on each side.
func MeasureDistinguish(m *MorrisMachine, T uint64, trials int, rng *xrand.Rand) DistinguishResult {
	res := DistinguishResult{T: T, Queries: 2 * trials}
	for i := 0; i < trials; i++ {
		nLow := rng.Range(1, T/2)
		if est := m.Estimate(SimulateMorris(m, nLow, rng)); est >= float64(T) {
			res.LowErrors++
		}
		nHigh := rng.Range(2*T, 4*T)
		if est := m.Estimate(SimulateMorris(m, nHigh, rng)); est < float64(T) {
			res.HighErrors++
		}
	}
	return res
}

// DFADistinguishErrors counts, exactly, the counts on which the
// derandomized machine answers the promise problem incorrectly, using the
// ρ-decomposition (no simulation, no sampling).
func DFADistinguishErrors(d *DFA, T uint64) DistinguishResult {
	res := DistinguishResult{T: T}
	for n := uint64(1); n <= T/2; n++ {
		if d.Estimate(d.StateAfter(n)) >= float64(T) {
			res.LowErrors++
		}
	}
	for n := 2 * T; n <= 4*T; n++ {
		if d.Estimate(d.StateAfter(n)) < float64(T) {
			res.HighErrors++
		}
	}
	res.Queries = int(T/2) + int(2*T+1)
	return res
}

// StateCountingResult reports the second construction: over probe points
// N_j, how many were "recovered" (estimate within (1±ε)N_j) along a single
// fixed-randomness execution, and how many distinct states those recovered
// probes occupied. A correct algorithm forces distinctStates ≥ recovered,
// i.e. 2^S ≥ recovered.
type StateCountingResult struct {
	Probes         int
	Recovered      int
	DistinctStates int
}

// MeasureStateCounting runs one fixed-seed execution of the machine through
// increasing probe points N_j = ⌈(e^{16εj}−1)/ε⌉ ≤ n and reports recovery
// and state-distinctness statistics.
func MeasureStateCounting(m *MorrisMachine, eps float64, n uint64, rng *xrand.Rand) StateCountingResult {
	var res StateCountingResult
	states := map[int]bool{}
	s := 0
	var cur uint64
	for j := 0; ; j++ {
		nj := njProbe(eps, j)
		if nj > n {
			break
		}
		// Advance the single execution from cur to nj.
		s = continueMorris(m, s, nj-cur, rng)
		cur = nj
		res.Probes++
		est := m.Estimate(s)
		if math.Abs(est-float64(nj)) <= eps*float64(nj) {
			res.Recovered++
			states[s] = true
		}
	}
	res.DistinctStates = len(states)
	return res
}

func njProbe(eps float64, j int) uint64 {
	v := math.Ceil((math.Exp(16*eps*float64(j)) - 1) / eps)
	if v < 1 {
		return 1
	}
	if v > math.MaxUint64/4 {
		return math.MaxUint64 / 4
	}
	return uint64(v)
}

func continueMorris(m *MorrisMachine, s int, n uint64, rng *xrand.Rand) int {
	for n > 0 && s < m.states-1 {
		p := math.Exp(-float64(s) * m.lnBase)
		if p < 1e-300 {
			break
		}
		z := rng.Geometric(p)
		if z > n {
			break
		}
		n -= z
		s++
	}
	return s
}
