package freqmoments

import (
	"math"
	"testing"

	"repro/internal/counter"
	"repro/internal/morris"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestExactMoment(t *testing.T) {
	counts := map[uint64]uint64{1: 3, 2: 2, 3: 1}
	cases := []struct {
		k    int
		want float64
	}{
		{0, 3},  // distinct items
		{1, 6},  // stream length
		{2, 14}, // 9+4+1
		{3, 36}, // 27+8+1
	}
	for _, c := range cases {
		if got := ExactMoment(counts, c.k); got != c.want {
			t.Fatalf("F_%d = %v, want %v", c.k, got, c.want)
		}
	}
	if got := ExactMoment(map[uint64]uint64{}, 2); got != 0 {
		t.Fatalf("empty F_2 = %v", got)
	}
}

func TestAMSExactCountersUnbiased(t *testing.T) {
	// With exact counters the AMS estimator is unbiased for F_2; with many
	// copies the average concentrates.
	rng := xrand.NewSeeded(1)
	src := stream.NewZipf(100, 1.1, rng)
	items := stream.Materialize(src, 20000)
	truth := ExactMoment(stream.ExactCounts(items), 2)
	const reps = 30
	var errs stats.Summary
	for rep := 0; rep < reps; rep++ {
		ams := NewAMS(2, 400, ExactCounters(), rng)
		for _, it := range items {
			ams.Process(it)
		}
		errs.Add(stats.SignedRelativeError(ams.Estimate(), truth))
	}
	if math.Abs(errs.Mean()) > 0.15 {
		t.Fatalf("AMS mean relative error %v, want ≈ 0", errs.Mean())
	}
}

func TestAMSF3(t *testing.T) {
	rng := xrand.NewSeeded(2)
	src := stream.NewZipf(50, 1.3, rng)
	items := stream.Materialize(src, 10000)
	truth := ExactMoment(stream.ExactCounts(items), 3)
	ams := NewAMS(3, 800, ExactCounters(), rng)
	for _, it := range items {
		ams.Process(it)
	}
	if re := stats.RelativeError(ams.Estimate(), truth); re > 0.5 {
		t.Fatalf("F_3 relative error %v", re)
	}
}

func TestAMSWithApproximateCounters(t *testing.T) {
	// The [GS09] point: swapping exact occurrence counters for Morris+
	// preserves the estimate while shrinking counter state.
	rng := xrand.NewSeeded(3)
	src := stream.NewZipf(100, 1.2, rng)
	items := stream.Materialize(src, 20000)
	truth := ExactMoment(stream.ExactCounts(items), 2)
	approxFactory := func() counter.Counter {
		return morris.NewPlus(0.001, rng)
	}
	const reps = 20
	var errs stats.Summary
	for rep := 0; rep < reps; rep++ {
		ams := NewAMS(2, 400, approxFactory, rng)
		for _, it := range items {
			ams.Process(it)
		}
		errs.Add(stats.SignedRelativeError(ams.Estimate(), truth))
	}
	if math.Abs(errs.Mean()) > 0.2 {
		t.Fatalf("approx-counter AMS mean rel err %v", errs.Mean())
	}
}

func TestAMSVarianceShrinksWithCopies(t *testing.T) {
	// The estimator averages s i.i.d. copies, so its variance must scale as
	// 1/s: quadrupling the copies should cut the across-run variance by
	// about 4×. Assert a factor > 2 to leave room for sampling noise in the
	// variance estimates themselves.
	rng := xrand.NewSeeded(9)
	src := stream.NewZipf(80, 1.2, rng)
	items := stream.Materialize(src, 5000)
	const reps = 60
	variance := func(s int) float64 {
		var est stats.Summary
		for rep := 0; rep < reps; rep++ {
			ams := NewAMS(2, s, ExactCounters(), rng)
			for _, it := range items {
				ams.Process(it)
			}
			est.Add(ams.Estimate())
		}
		return est.Variance()
	}
	small, large := variance(64), variance(256)
	if small <= 0 || large <= 0 {
		t.Fatalf("degenerate variances: s=64 %v, s=256 %v", small, large)
	}
	if ratio := small / large; ratio < 2 {
		t.Fatalf("variance ratio 64→256 copies = %.2f, want > 2 (ideal 4)", ratio)
	}
}

func TestAMSStreamLengthAndCopies(t *testing.T) {
	rng := xrand.NewSeeded(4)
	ams := NewAMS(2, 7, ExactCounters(), rng)
	for i := 0; i < 100; i++ {
		ams.Process(uint64(i % 5))
	}
	if ams.StreamLength() != 100 {
		t.Fatalf("StreamLength = %d", ams.StreamLength())
	}
	if ams.Copies() != 7 {
		t.Fatalf("Copies = %d", ams.Copies())
	}
	if ams.CounterStateBits() <= 0 {
		t.Fatal("CounterStateBits not positive after processing")
	}
}

func TestAMSEmptyStream(t *testing.T) {
	rng := xrand.NewSeeded(5)
	ams := NewAMS(2, 10, ExactCounters(), rng)
	if ams.Estimate() != 0 {
		t.Fatalf("empty estimate = %v", ams.Estimate())
	}
}

func TestAMSConstantStream(t *testing.T) {
	// Single item repeated m times: F_k = m^k exactly, and every copy
	// samples that item, so the estimate with exact counters is
	// m·(r^k − (r−1)^k) where r is uniform over 1..m — whose mean is m^k.
	rng := xrand.NewSeeded(6)
	const m = 1000
	var errs stats.Summary
	for rep := 0; rep < 50; rep++ {
		ams := NewAMS(2, 200, ExactCounters(), rng)
		for i := 0; i < m; i++ {
			ams.Process(42)
		}
		errs.Add(stats.SignedRelativeError(ams.Estimate(), m*m))
	}
	if math.Abs(errs.Mean()) > 0.05 {
		t.Fatalf("constant-stream mean rel err %v", errs.Mean())
	}
}

func TestAMSValidation(t *testing.T) {
	rng := xrand.NewSeeded(7)
	cases := []func(){
		func() { NewAMS(1, 10, ExactCounters(), rng) },
		func() { NewAMS(2, 0, ExactCounters(), rng) },
		func() { NewAMS(2, 10, ExactCounters(), nil) },
		func() { ExactMoment(nil, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestApproxCounterStateSmaller(t *testing.T) {
	// On a heavy stream the Morris-based occurrence counters use fewer
	// total state bits than exact ones.
	rng := xrand.NewSeeded(8)
	items := make([]uint64, 50000) // single hot item → large r per copy
	exactAMS := NewAMS(2, 100, ExactCounters(), rng)
	morrisAMS := NewAMS(2, 100, func() counter.Counter { return morris.New(0.05, rng) }, rng)
	for _, it := range items {
		exactAMS.Process(it)
		morrisAMS.Process(it)
	}
	if morrisAMS.CounterStateBits() >= exactAMS.CounterStateBits() {
		t.Fatalf("morris counters (%d bits) not smaller than exact (%d bits)",
			morrisAMS.CounterStateBits(), exactAMS.CounterStateBits())
	}
}
