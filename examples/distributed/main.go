// Distributed: shard a counting workload across sites and merge the sites'
// counters into one, exercising the full mergeability of the paper's
// Remark 2.4 — the merged counter is distributed exactly as one counter
// that saw every event, so nothing is lost in (ε, δ).
//
// Two tiers are shown. First, whole *banks*: each site owns a sharded bank
// (internal/shardbank) of packed Morris registers covering the same key
// space and counts its own slice of the event stream concurrently. The
// sites then exchange their state the way real sites would — over a wire —
// as snapcodec-compressed snapshots (the same bytes counterd serves on
// GET /snapshot and ingests on POST /merge): each remote site encodes,
// the coordinator decodes into a mergeable bank and folds it in with
// Bank.Merge. The skewed registers compress severalfold below the raw
// packed payload; the example prints both sizes per site. Then single
// counters: the paper's Nelson–Yu counter merged across eight workers via
// the same remark.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"sync"

	"repro"
	"repro/internal/bank"
	"repro/internal/shardbank"
	"repro/internal/snapcodec"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	// --- Tier 1: merging whole counter banks -----------------------------
	const (
		workers = 4
		keys    = 20_000
		perW    = 1_000_000
	)
	alg := bank.NewMorrisAlg(0.005, 14)

	// Each worker counts its own slice of the stream into its own bank —
	// no coordination at all during ingest — while truth is tallied per
	// worker and summed after.
	banks := make([]*shardbank.Bank, workers)
	truths := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		banks[w] = shardbank.New(keys, alg, 16, uint64(10+w))
		truths[w] = make([]uint64, keys)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := stream.NewZipf(keys, 1.05, xrand.NewSeeded(uint64(500+w)))
			buf := make([]int, 2048)
			for done := 0; done < perW; {
				batch := buf
				if rest := perW - done; rest < len(batch) {
					batch = batch[:rest]
				}
				for i := range batch {
					k := int(src.Next())
					batch[i] = k
					truths[w][k]++
				}
				banks[w].IncrementBatch(batch)
				done += len(batch)
			}
		}(w)
	}
	wg.Wait()

	// Ship every remote site's state to site 0 as a compressed snapshot,
	// then fold (tree or linear order — the merge is associative in
	// distribution). The decode side rebuilds a mergeable bank purely from
	// the wire bytes: algorithm, shape, and registers all ride the header.
	merged := banks[0]
	raw := snapcodec.RawPayloadBytes(keys, alg.Width())
	var shipped int
	for w, b := range banks[1:] {
		snap := &snapcodec.Snapshot{
			N:         b.Len(),
			Shards:    b.Shards(),
			Seed:      b.Seed(),
			Registers: b.ExportState().Registers,
		}
		if err := snap.SetAlg(b.Algorithm()); err != nil {
			panic(err)
		}
		wire, err := snapcodec.Encode(snap)
		if err != nil {
			panic(err)
		}
		shipped += len(wire)
		fmt.Printf("site %d snapshot: %d bytes on the wire vs %d raw packed (%.2f×)\n",
			w+1, len(wire), raw, float64(raw)/float64(len(wire)))

		// --- the wire --- //
		got, err := snapcodec.Decode(wire)
		if err != nil {
			panic(err)
		}
		gotAlg, err := got.Alg()
		if err != nil {
			panic(err)
		}
		peer := shardbank.New(got.N, gotAlg, got.Shards, got.Seed)
		if err := peer.RestoreState(shardbank.State{Registers: got.Registers}); err != nil {
			panic(err)
		}
		if err := merged.Merge(peer); err != nil {
			panic(err)
		}
	}
	fmt.Printf("total shipped: %d bytes for %d sites (raw would be %d)\n\n",
		shipped, workers-1, (workers-1)*raw)
	truth := make([]float64, keys)
	for _, tw := range truths {
		for k, c := range tw {
			truth[k] += float64(c)
		}
	}

	est := merged.EstimateAll()
	var sumRel, hit float64
	for k := 0; k < keys; k++ {
		if truth[k] < 1000 {
			continue
		}
		d := (est[k] - truth[k]) / truth[k]
		if d < 0 {
			d = -d
		}
		sumRel += d
		hit++
	}
	fmt.Printf("merged %d banks of %d packed counters (%d events total)\n",
		workers, keys, workers*perW)
	fmt.Printf("mean |relative error| over %.0f hot keys: %.2f%%\n", hit, 100*sumRel/hit)
	fmt.Printf("per-bank footprint: %d bytes (%d bits/counter)\n\n",
		merged.SizeBytes(), merged.BitsPerCounter())

	// --- Tier 2: merging single counters ---------------------------------
	family := approxcount.NewFamily(99)

	// Eight workers each count their own slice of a 4M-event stream.
	const singleWorkers = 8
	const perWorker = 500_000
	shards := make([]*approxcount.NelsonYu, singleWorkers)
	for w := range shards {
		c, err := family.NelsonYu(0.05, 1e-6)
		if err != nil {
			panic(err)
		}
		c.IncrementBy(perWorker) // skip-ahead: same law as per-event loops
		shards[w] = c
	}
	total := shards[0]
	for _, s := range shards[1:] {
		if err := approxcount.Merge(total, s); err != nil {
			panic(err)
		}
	}
	trueN := float64(singleWorkers * perWorker)
	fmt.Printf("merged Nelson–Yu estimate: %.0f (true %d)\n",
		total.Estimate(), singleWorkers*perWorker)
	fmt.Printf("relative error:  %+.3f%%\n", 100*(total.Estimate()-trueN)/trueN)
	fmt.Printf("merged state:    %d bits\n", total.StateBits())

	// Mixed parameters are rejected — merging is only defined between
	// counters of the same law.
	m1 := family.Morris(0.01)
	bad := family.Morris(0.02)
	m1.IncrementBy(300_000)
	if err := approxcount.Merge(m1, bad); err != nil {
		fmt.Printf("mismatched merge rejected: %v\n", err)
	}
}
