GO ?= go

.PHONY: all build vet fmt-check doclint test race bench bench-cluster fuzz-smoke ci \
	counterd serve cluster-smoke cluster-demo windowed-demo wire-smoke grow-smoke \
	distinct-smoke \
	metrics-smoke manifest-check

all: build

build:
	$(GO) build ./...

# The durable counter daemon (see README "counterd" and docs/FORMAT.md).
counterd:
	mkdir -p bin
	$(GO) build -o bin/counterd ./cmd/counterd

serve: counterd
	bin/counterd -addr :8347 -dir ./counterd-data -n 1000000 -shards 256

# The 3-node loopback cluster demo: crash, hinted handoff, anti-entropy
# (see docs/CLUSTER.md).
cluster-demo:
	$(GO) run ./examples/distributed

# The sliding-window demo: drift, rotation, kill -9 byte-identity
# (see docs/ENGINES.md, "Engine: window").
windowed-demo:
	$(GO) run ./examples/windowed

# Wire-protocol smoke: the mixed-transport 3-node demo (half the writers on
# the binary protocol, half on HTTP, replica fan-out over the wire) plus the
# wire package's own suite and the mixed-transport crash test under race
# (see docs/FORMAT.md, "The wire protocol").
wire-smoke:
	$(GO) test -race ./internal/wire
	$(GO) test -race -run 'TestClusterMixedTransportCrashRecovery' ./internal/cluster
	$(GO) run ./examples/distributed

vet:
	$(GO) vet ./...

# Documentation lint: intra-repo markdown links resolve, and every flag or
# path reference in README.md / docs/*.md names something real (see
# tools/doclint.sh).
doclint:
	bash tools/doclint.sh

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The cluster integration suite under the race detector: 3-node loopback
# ring, replication, forwarding, crash/recovery convergence, and the live
# grow/shrink rebalance test.
cluster-smoke:
	$(GO) test -race -v -run 'TestCluster|TestClient' ./internal/cluster ./internal/client

# Live scale-out against real counterd processes: boot a 3-node ring, grow
# it to 5 under load, decommission one back to 4 — byte-identical owner
# snapshots and sketch-accurate estimates at every step (tools/growsmoke).
grow-smoke: counterd
	$(GO) run ./tools/growsmoke -counterd bin/counterd

# Live unique counting against real counterd processes: boot a 3-node RF=3
# distinct ring, drive Zipf load with an exact truth set, kill -9 a node and
# restart it — byte-identical whole-engine snapshots and a /distinct answer
# inside the HLL error bound at every step (tools/distinctsmoke).
distinct-smoke: counterd
	$(GO) run ./tools/distinctsmoke -counterd bin/counterd

# Observability smoke: boot a real counterd, wait for the /readyz gate,
# drive traffic, lint the full /metrics exposition with the shared parser,
# assert the key series from every instrumented layer, and check the
# embedded ops dashboard is self-contained HTML (tools/metricssmoke).
metrics-smoke: counterd
	$(GO) run ./tools/metricssmoke -counterd bin/counterd

# Validate the Kubernetes manifests under deploy/ without kubectl: probe
# paths, headless-Service gossip wiring, PVC-backed WAL dir, scrape
# annotations, and the SIGTERM drain budget (tools/manifestcheck).
manifest-check:
	$(GO) run ./tools/manifestcheck

# Mirrors the CI bench job: human-readable text plus three machine-readable
# JSON artifacts (cmd/benchjson) tracking the perf trajectory of the hot
# paths — core (single-counter + contended shardbank), serve (store, WAL,
# snapcodec, engines), cluster (ingest fan-out, partition exchange).
bench:
	mkdir -p bench-out
	$(GO) test -run='^$$' -bench=. -benchtime=100x . | tee bench-out/bench-core.txt
	$(GO) run ./cmd/benchjson < bench-out/bench-core.txt > bench-out/BENCH_core.json
	$(GO) test -run='^$$' -bench=. -benchtime=100x \
		./internal/server ./internal/wal ./internal/snapcodec ./internal/engine ./internal/wire \
		| tee bench-out/bench-serve.txt
	$(GO) run ./cmd/benchjson < bench-out/bench-serve.txt > bench-out/BENCH_serve.json
	$(GO) test -run='^$$' -bench=. -benchtime=100x ./internal/cluster | tee bench-out/bench-cluster.txt
	$(GO) run ./cmd/benchjson < bench-out/bench-cluster.txt > bench-out/BENCH_cluster.json
	$(GO) test -run='^$$' -bench='BenchmarkDurability' -benchtime=50x \
		./internal/server | tee bench-out/bench-durability.txt
	$(GO) run ./cmd/benchjson < bench-out/bench-durability.txt > bench-out/BENCH_durability.json

# Cluster-focused benchmarks only (ingest fan-out, partition snapshots,
# ring routing, WAL fsync policies), same JSON artifact.
bench-cluster:
	mkdir -p bench-out
	$(GO) test -run='^$$' -bench='Cluster|Partition|Ring|AppendBatch' -benchtime=100x \
		./internal/cluster ./internal/wal | tee bench-out/bench-cluster.txt
	$(GO) run ./cmd/benchjson < bench-out/bench-cluster.txt > bench-out/BENCH_cluster.json

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReaderNeverPanics -fuzztime=5s ./internal/bitpack
	$(GO) test -run='^$$' -fuzz=FuzzWriteReadRoundTrip -fuzztime=5s ./internal/bitpack
	$(GO) test -run='^$$' -fuzz=FuzzDecodeState -fuzztime=5s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzIncrementPattern -fuzztime=5s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=5s ./internal/snapcodec
	$(GO) test -run='^$$' -fuzz=FuzzDecodeNeverPanics -fuzztime=5s ./internal/snapcodec
	$(GO) test -run='^$$' -fuzz=FuzzDeltaSnapshot -fuzztime=5s ./internal/snapcodec
	$(GO) test -run='^$$' -fuzz=FuzzSummary -fuzztime=5s ./internal/heavyhitters
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=5s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDistinctSnapshot -fuzztime=5s ./internal/engine
	$(GO) test -run='^$$' -fuzz=FuzzF2Snapshot -fuzztime=5s ./internal/engine

ci: build vet fmt-check doclint manifest-check race metrics-smoke fuzz-smoke
