package engine

import (
	"io"
	"testing"

	"repro/internal/bank"
	"repro/internal/shardbank"
)

func benchBatch(n, size int) []int {
	return zipfKeys(n, size, 1.05, 9)
}

// The interface-dispatch overhead the refactor added to the hot path: one
// virtual call per batch on top of shardbank.IncrementBatch.
func BenchmarkBankEngineApplyBatch(b *testing.B) {
	const n = 100_000
	var e Engine = NewBank(shardbank.New(n, bank.NewMorrisAlg(0.005, 14), 64, 42))
	batch := benchBatch(n, 1024)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ApplyBatch(batch)
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkTopKApplyBatch(b *testing.B) {
	const n = 100_000
	e, err := NewTopK(n, bank.NewMorrisAlg(0.005, 14), 64, 256, 42)
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(n, 1024)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ApplyBatch(batch)
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkTopKQuery(b *testing.B) {
	const n = 100_000
	e, err := NewTopK(n, bank.NewMorrisAlg(0.005, 14), 64, 256, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TopK(10, 0, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKSnapshotEncode(b *testing.B) {
	const n = 100_000
	e, err := NewTopK(n, bank.NewMorrisAlg(0.005, 14), 64, 256, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SnapshotTo(io.Discard, e, 0, 0, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowApplyBatch(b *testing.B) {
	const n = 100_000
	e, err := NewWindow(n, bank.NewMorrisAlg(0.005, 14), 64, 8, int64(1e9), 42)
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(n, 1024)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ApplyBatch(batch)
		if i%64 == 63 {
			e.Advance(uint64(i / 64)) // rotation cost rides along, 1/64 of batches
		}
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// The windowed read path: a trailing-half-ring top-10 scan, Remark 2.4
// folds included.
func BenchmarkWindowTopKQuery(b *testing.B) {
	const n = 100_000
	e, err := NewWindow(n, bank.NewMorrisAlg(0.005, 14), 64, 8, int64(1e9), 42)
	if err != nil {
		b.Fatal(err)
	}
	for ep, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.Advance(uint64(ep / 8))
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TopKWindow(10, 0, n, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowSnapshotEncode(b *testing.B) {
	const n = 100_000
	e, err := NewWindow(n, bank.NewMorrisAlg(0.005, 14), 64, 8, int64(1e9), 42)
	if err != nil {
		b.Fatal(err)
	}
	for ep, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.Advance(uint64(ep / 8))
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SnapshotTo(io.Discard, e, 0, 0, true); err != nil {
			b.Fatal(err)
		}
	}
	var buf countingWriter
	if err := SnapshotTo(&buf, e, 0, 0, true); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf)/float64(n*8), "bytes/register")
}

func BenchmarkDistinctApplyBatch(b *testing.B) {
	const n = 100_000
	e, err := NewDistinct(n, 16, 12, 42)
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(n, 1024)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ApplyBatch(batch)
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// The cardinality read path: a full-range register scan plus the harmonic
// sum and small-range correction.
func BenchmarkDistinctEstimate(b *testing.B) {
	const n = 100_000
	e, err := NewDistinct(n, 16, 12, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RangeEstimate(0, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinctSnapshotEncode(b *testing.B) {
	const n = 100_000
	e, err := NewDistinct(n, 16, 12, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SnapshotTo(io.Discard, e, 0, 0, true); err != nil {
			b.Fatal(err)
		}
	}
	var buf countingWriter
	if err := SnapshotTo(&buf, e, 0, 0, true); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(buf)/float64(16*4096), "bytes/register")
}

func BenchmarkF2ApplyBatch(b *testing.B) {
	const n = 100_000
	e, err := NewF2(n, 16, 5, 64, 42)
	if err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(n, 1024)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ApplyBatch(batch)
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// The moment read path: a median-of-means fold over rows × cols cells.
func BenchmarkF2Estimate(b *testing.B) {
	const n = 100_000
	e, err := NewF2(n, 16, 5, 64, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 200_000, 1.1, 3), 4096) {
		e.ApplyBatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RangeEstimate(0, n); err != nil {
			b.Fatal(err)
		}
	}
}

// countingWriter counts bytes written (snapshot size metric).
type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}
