package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/snapcodec"
)

func topkConfig(t *testing.T, n int) Config {
	cfg := testConfig(t, n)
	cfg.Engine = engine.KindTopK
	cfg.Partitions = 8
	cfg.TopKCap = 32
	return cfg
}

func snapshotBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The store-level behavior pin for the engine refactor: GET /snapshot of a
// Morris store must be byte-identical to snapcodec-encoding the reference
// shardbank built from the same construction parameters and batch history —
// the exact bytes the pre-engine store served.
func TestStoreSnapshotBytesPinned(t *testing.T) {
	cfg := testConfig(t, 800)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close(false)
	batches := zipfBatches(cfg.N, 30, 64, 17)
	for _, b := range batches {
		if err := st.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	ref := referenceBank(cfg, batches)
	want := &snapcodec.Snapshot{
		N:         ref.Len(),
		Shards:    ref.Shards(),
		Seed:      ref.Seed(),
		Registers: ref.ExportState().Registers,
	}
	if err := want.SetAlg(ref.Algorithm()); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := snapcodec.Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, st), wantBytes) {
		t.Fatal("store /snapshot bytes diverge from the direct shardbank encoding")
	}
}

// A topk-engine store is durable exactly like the bank: recovery from seed
// + WAL, and from checkpoint + WAL suffix, must serve byte-identical
// /snapshot streams.
func TestTopKStoreRestartExactness(t *testing.T) {
	cfg := topkConfig(t, 2000)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := zipfBatches(cfg.N, 50, 128, 23)
	for i, b := range batches {
		if err := st.Apply(b); err != nil {
			t.Fatal(err)
		}
		if i == 24 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.Stats().Engine != engine.KindTopK {
		t.Fatalf("engine = %q", st.Stats().Engine)
	}
	want := snapshotBytes(t, st)
	wantTop, err := st.TopK(10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantTop) != 10 {
		t.Fatalf("top-10 returned %d entries", len(wantTop))
	}
	if err := st.Close(false); err != nil { // crash: checkpoint + WAL suffix
		t.Fatal(err)
	}

	st2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close(false)
	if stats := st2.Stats(); stats.RecoveredFrom != "snapshot" || stats.ReplayedRecords != 25 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("recovered topk /snapshot differs from pre-crash bytes")
	}
	gotTop, err := st2.TopK(10, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Fatalf("top-k entry %d: recovered %+v, want %+v", i, gotTop[i], wantTop[i])
		}
	}
}

// Top-k merges are WAL-logged and replay exactly, in both join flavors.
func TestTopKStoreMergeReplay(t *testing.T) {
	cfg := topkConfig(t, 2000)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range zipfBatches(cfg.N, 20, 128, 29) {
		if err := st.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	peerCfg := topkConfig(t, 2000)
	peerCfg.Seed = 77
	peer, err := Open(peerCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close(false)
	for _, b := range zipfBatches(cfg.N, 30, 128, 31) {
		if err := peer.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// One whole-engine disjoint merge, one partition max join.
	if err := st.Merge(snapshotBytes(t, peer)); err != nil {
		t.Fatalf("merge: %v", err)
	}
	var pblob bytes.Buffer
	if err := peer.PartitionSnapshotTo(&pblob, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.MergeMax(pblob.Bytes()); err != nil {
		t.Fatalf("mergemax: %v", err)
	}
	want := snapshotBytes(t, st)
	if err := st.Close(false); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close(false)
	if got := snapshotBytes(t, st2); !bytes.Equal(got, want) {
		t.Fatal("replayed topk merges diverge from the live state")
	}
	if s := st2.Stats(); s.Merges != 1 || s.MergeMaxes != 1 {
		t.Fatalf("replayed merge counters: %+v", s)
	}
}

// A bank-engine snapshot must not merge into a topk store and vice versa —
// rejected BEFORE the WAL stage, as a 400-class input error.
func TestCrossEngineMergeRejected(t *testing.T) {
	bankSt, err := Open(testConfig(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	defer bankSt.Close(false)
	cfg := topkConfig(t, 500)
	topkSt, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := topkSt.Merge(snapshotBytes(t, bankSt)); err == nil {
		t.Fatal("bank snapshot merged into topk store")
	}
	if err := bankSt.MergeMax(snapshotBytes(t, topkSt)); err == nil {
		t.Fatal("topk snapshot merged into bank store")
	}
	// The rejected merges must not have been logged: the store reopens.
	if err := topkSt.Close(false); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after rejected cross-engine merge: %v", err)
	}
	st2.Close(false)
}

// GET /topk serves ranked keys on both engines.
func TestHTTPTopK(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bank", testConfig(t, 300)},
		{"topk", topkConfig(t, 300)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close(false)
			// Key 5 hottest, then 6, then 7.
			var keys []int
			for i := 0; i < 300; i++ {
				keys = append(keys, 5)
				if i%2 == 0 {
					keys = append(keys, 6)
				}
				if i%4 == 0 {
					keys = append(keys, 7)
				}
			}
			if err := st.Apply(keys); err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(Handler(st))
			defer srv.Close()
			resp, err := http.Get(srv.URL + "/topk?k=3")
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				K      int            `json:"k"`
				Engine string         `json:"engine"`
				TopK   []engine.Entry `json:"topk"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if out.Engine != tc.name || len(out.TopK) != 3 {
				t.Fatalf("topk response: %+v", out)
			}
			if out.TopK[0].Key != 5 {
				t.Fatalf("hottest key = %d, want 5", out.TopK[0].Key)
			}
			// Partition-scoped: keys 5..7 share low partitions; a partition
			// query returns only keys of that partition's range.
			resp, err = http.Get(srv.URL + "/topk?k=5&partition=" + fmt.Sprint(st.Partitions()-1))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			lo, _ := snapcodec.PartitionRange(st.Len(), st.Partitions(), st.Partitions()-1)
			for _, e := range out.TopK {
				if e.Key < lo {
					t.Fatalf("partition query leaked key %d below %d", e.Key, lo)
				}
			}
		})
	}
}

// The error-status contract of the HTTP surface, table-driven: malformed
// bodies and parameters are 400s (never 500 — a client must be able to
// trust that a 5xx means a server fault), missing resources are 404s.
// Every case runs against both the /v1 prefix and the legacy unprefixed
// alias — the two surfaces must answer identically, status and envelope.
func TestHTTPErrorStatuses(t *testing.T) {
	st, err := Open(testConfig(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close(false)
	srv := httptest.NewServer(Handler(st))
	defer srv.Close()

	topkSt, err := Open(topkConfig(t, 800))
	if err != nil {
		t.Fatal(err)
	}
	defer topkSt.Close(false)
	topkBlob := snapshotBytes(t, topkSt)

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"inc bad json", "POST", "/inc", `{"keys": [1,`, http.StatusBadRequest},
		{"inc empty body", "POST", "/inc", ``, http.StatusBadRequest},
		{"inc no keys", "POST", "/inc", `{}`, http.StatusBadRequest},
		{"inc wrong type", "POST", "/inc", `{"keys": "nope"}`, http.StatusBadRequest},
		{"inc out of range", "POST", "/inc", `{"key": 100}`, http.StatusBadRequest},
		{"inc negative", "POST", "/inc", `{"keys": [-1]}`, http.StatusBadRequest},
		{"estimate bad key", "GET", "/estimate/zzz", "", http.StatusBadRequest},
		{"estimate out of range", "GET", "/estimate/100", "", http.StatusNotFound},
		{"snapshot bad partition", "GET", "/snapshot/zz", "", http.StatusBadRequest},
		{"snapshot partition 404", "GET", "/snapshot/99", "", http.StatusNotFound},
		{"merge empty body", "POST", "/merge", ``, http.StatusBadRequest},
		{"merge garbage", "POST", "/merge", `not a snapshot`, http.StatusBadRequest},
		{"merge truncated magic", "POST", "/merge", "NYS", http.StatusBadRequest},
		{"mergemax empty body", "POST", "/mergemax", ``, http.StatusBadRequest},
		{"mergemax garbage", "POST", "/mergemax", `{"keys":[1]}`, http.StatusBadRequest},
		{"mergemax cross engine", "POST", "/mergemax", string(topkBlob), http.StatusBadRequest},
		{"topk missing k", "GET", "/topk", "", http.StatusBadRequest},
		{"topk bad k", "GET", "/topk?k=zero", "", http.StatusBadRequest},
		{"topk negative k", "GET", "/topk?k=-3", "", http.StatusBadRequest},
		{"topk bad partition", "GET", "/topk?k=5&partition=x", "", http.StatusBadRequest},
		{"topk partition range", "GET", "/topk?k=5&partition=99", "", http.StatusBadRequest},
		{"distinct wrong engine", "GET", "/distinct", "", http.StatusBadRequest},
		{"f2 wrong engine", "GET", "/f2", "", http.StatusBadRequest},
	} {
		for _, prefix := range []string{"", "/v1"} {
			name := tc.name
			if prefix != "" {
				name = tc.name + " (v1)"
			}
			t.Run(name, func(t *testing.T) {
				req, err := http.NewRequest(tc.method, srv.URL+prefix+tc.path, strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != tc.want {
					t.Fatalf("%s %s%s: status %d, want %d", tc.method, prefix, tc.path, resp.StatusCode, tc.want)
				}
				// Every error body is the unified envelope:
				// {"error": "...", "code": <status>}.
				var e struct {
					Error string `json:"error"`
					Code  int    `json:"code"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
					t.Fatalf("error body not a JSON error envelope (%v)", err)
				}
				if e.Code != tc.want {
					t.Fatalf("envelope code %d, want %d", e.Code, tc.want)
				}
			})
		}
	}
}

// The /v1 prefix and the legacy alias must serve identical success bodies
// too, not just identical errors — a byte-for-byte check on the read path.
func TestV1AliasParity(t *testing.T) {
	st, err := Open(testConfig(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close(false)
	srv := httptest.NewServer(Handler(st))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/inc", "application/json", strings.NewReader(`{"keys":[1,2,2,7]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/inc: status %d", resp.StatusCode)
	}

	for _, path := range []string{"/estimate/2", "/estimates", "/snapshot", "/healthz"} {
		legacy, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		lb, _ := io.ReadAll(legacy.Body)
		legacy.Body.Close()
		v1, err := http.Get(srv.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		vb, _ := io.ReadAll(v1.Body)
		v1.Body.Close()
		if legacy.StatusCode != http.StatusOK || v1.StatusCode != http.StatusOK {
			t.Fatalf("%s: statuses %d / %d", path, legacy.StatusCode, v1.StatusCode)
		}
		if path == "/healthz" {
			continue // uptime differs between the two reads; shape is enough
		}
		if !bytes.Equal(lb, vb) {
			t.Fatalf("%s: legacy and /v1 bodies differ:\n%s\n%s", path, lb, vb)
		}
	}
}
