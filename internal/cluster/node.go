package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/snapcodec"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config wires one Store into a cluster.
type Config struct {
	// Self is the node's advertised base URL (e.g. "http://10.0.0.7:8347").
	// It doubles as the node's identity in the member table and on the
	// ring, so it must be reachable by every peer.
	Self string
	// Join lists peer base URLs to gossip with at startup. Empty bootstraps
	// a single-node cluster that others join.
	Join []string
	// RF is the replication factor: each partition lives on RF distinct
	// nodes (clamped to the cluster size). Default 2.
	RF int
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// HintDir is where per-peer replication outboxes (hinted handoff)
	// persist. Default: <store dir>/hints — but the store dir is not known
	// here, so counterd passes it explicitly.
	HintDir string
	// MaxForward caps the keys per replication/forward HTTP call.
	// Default 8192.
	MaxForward int

	// WireAddr is the node's advertised binary wire listener ("host:port"),
	// gossiped to peers so replication fan-out and smart clients can use the
	// wire transport. Empty = this node serves HTTP only.
	WireAddr string

	GossipInterval      time.Duration // member exchange cadence (default 1s)
	GossipFanout        int           // peers contacted per round (default 3)
	ReplInterval        time.Duration // outbox drain cadence (default 200ms)
	AntiEntropyInterval time.Duration // partition sync cadence (default 5s)
	RebalanceInterval   time.Duration // rebalance step cadence (default 500ms)
	HTTPTimeout         time.Duration // per-request deadline (default 5s)

	Membership MembershipConfig

	// HintFsync is the fsync policy of the outbox logs, in -fsync
	// vocabulary ("always" | "interval" | "off"). Default "off" — the
	// process-crash-safe choice: every append is still flushed to the OS
	// at commit, and docs/CLUSTER.md explains why hint loss under power
	// failure is tolerable. Set "always" to close that window at the cost
	// of an extra fsync per fan-out append.
	HintFsync string

	// hintPolicy is HintFsync resolved by defaults().
	hintPolicy wal.SyncPolicy

	// Logf receives operational log lines (default log.Printf; tests pass
	// a silent sink).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() error {
	if c.Self == "" {
		return errors.New("cluster: Config.Self is required")
	}
	if c.HintDir == "" {
		return errors.New("cluster: Config.HintDir is required")
	}
	if c.RF <= 0 {
		c.RF = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxForward <= 0 {
		c.MaxForward = 8192
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = 3
	}
	if c.ReplInterval <= 0 {
		c.ReplInterval = 200 * time.Millisecond
	}
	if c.AntiEntropyInterval <= 0 {
		c.AntiEntropyInterval = 5 * time.Second
	}
	if c.RebalanceInterval <= 0 {
		c.RebalanceInterval = 500 * time.Millisecond
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 5 * time.Second
	}
	if c.HintFsync == "" {
		c.HintFsync = "off"
	}
	var err error
	if c.hintPolicy, err = wal.ParseSyncPolicy(c.HintFsync); err != nil {
		return fmt.Errorf("cluster: HintFsync: %w", err)
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return nil
}

// Node is one cluster member: a Store plus membership, routing, write
// fan-out, and anti-entropy. The owner serves Node.Handler over HTTP,
// calls Start to launch the background loops, and Stop before closing the
// Store.
type Node struct {
	cfg Config
	st  *server.Store
	mem *Membership
	reb *rebalancer

	ring   atomic.Pointer[Ring]
	client *http.Client
	pool   *wire.Pool // persistent wire conns for replica fan-out

	obMu     sync.Mutex
	outboxes map[string]*outbox

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Anti-entropy loop-local state (touched only by that goroutine):
	// recovered peers pending repair, last-seen member states, and the
	// per-partition write versions observed last round (the quiescence
	// gate).
	needsRepair  map[string]bool
	repairFailed map[string]bool
	prevStates   map[string]MemberState
	lastPartVer  []uint64

	// Counters live in the store's metrics registry so /cluster/info and
	// /metrics read the same atomics (metrics.Counter is an atomic.Uint64
	// underneath) — one source of truth for both surfaces.
	aeRounds    *metrics.Counter
	forwards    *metrics.Counter
	replSent    *metrics.Counter
	replWire    *metrics.Counter // subset of replSent shipped over the wire protocol
	replRecvd   *metrics.Counter
	replDropped *metrics.Counter // repl keys for partitions neither owned nor frozen

	aeDeltaSyncs *metrics.Counter // anti-entropy repairs that shipped only divergent blocks
	aeBytesSaved *metrics.Counter // full-snapshot bytes avoided by those delta repairs
	rebDeltaPull *metrics.Counter // warm handoffs satisfied by a block delta

	memTransitions *metrics.CounterVec // failure-detector state flips, by from/to
}

// New builds a Node around an open Store. Call Start to join the cluster.
func New(st *server.Store, cfg Config) (*Node, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.HintDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	n := &Node{
		cfg:          cfg,
		st:           st,
		client:       &http.Client{Timeout: cfg.HTTPTimeout},
		pool:         wire.NewPool(cfg.HTTPTimeout),
		outboxes:     make(map[string]*outbox),
		stop:         make(chan struct{}),
		needsRepair:  make(map[string]bool),
		repairFailed: make(map[string]bool),
		prevStates:   make(map[string]MemberState),
		lastPartVer:  make([]uint64, st.Partitions()),
	}
	// Replication chunks must fit the receiving store's batch cap, or a
	// drained chunk would be rejected forever and wedge the outbox.
	if n.cfg.MaxForward > st.MaxBatch() {
		n.cfg.MaxForward = st.MaxBatch()
	}
	n.initMetrics()
	n.mem = NewMembership(cfg.Self, cfg.Membership, n.rebuildRing)
	n.mem.OnTransition(func(id string, from, to MemberState) {
		n.memTransitions.With(from.String(), to.String()).Inc()
	})
	if cfg.WireAddr != "" {
		n.mem.SetSelfWire(cfg.WireAddr)
	}
	n.rebuildRing()
	n.reb = newRebalancer(n)
	return n, nil
}

// initMetrics registers the cluster layer's instruments into the store's
// registry. The scrape-time gauge funcs close over n and run only once the
// node is fully built.
func (n *Node) initMetrics() {
	reg := n.st.Metrics()
	n.aeRounds = reg.Counter("counterd_cluster_antientropy_rounds_total",
		"Anti-entropy rounds started (skipped rounds while unreconciled do not count).")
	n.forwards = reg.Counter("counterd_cluster_forwards_total",
		"Batches forwarded to a remote coordinator (partitions this node does not replicate).")
	n.replSent = reg.Counter("counterd_cluster_repl_keys_sent_total",
		"Replication keys drained from peer outboxes (all transports).")
	n.replWire = reg.Counter("counterd_cluster_repl_keys_wire_total",
		"Subset of sent replication keys shipped over the binary wire protocol.")
	n.replRecvd = reg.Counter("counterd_cluster_repl_keys_received_total",
		"Replication keys applied locally from peers.")
	n.replDropped = reg.Counter("counterd_cluster_repl_keys_dropped_total",
		"Received replication keys dropped (partition neither owned nor frozen here).")
	n.aeDeltaSyncs = reg.Counter("counterd_antientropy_delta_syncs_total",
		"Anti-entropy partition repairs that transferred only divergent blocks.")
	n.aeBytesSaved = reg.Counter("counterd_antientropy_bytes_saved_total",
		"Bytes not transferred because anti-entropy shipped block deltas instead of full partition snapshots.")
	n.rebDeltaPull = reg.Counter("counterd_rebalance_delta_handoffs_total",
		"Warm rebalance handoffs satisfied by a block delta instead of a full partition transfer.")
	n.memTransitions = reg.CounterVec("counterd_cluster_member_transitions_total",
		"Member state transitions recorded by the local failure detector.", "from", "to")
	reg.GaugeFunc("counterd_cluster_outbox_pending_keys",
		"Replication keys queued across every peer outbox (hinted-handoff backlog).",
		func() float64 {
			n.obMu.Lock()
			defer n.obMu.Unlock()
			var total int64
			for _, o := range n.outboxes {
				total += o.pending()
			}
			return float64(total)
		})
	reg.GaugeFunc("counterd_cluster_outboxes",
		"Open per-peer outbox logs.",
		func() float64 {
			n.obMu.Lock()
			defer n.obMu.Unlock()
			return float64(len(n.outboxes))
		})
	reg.GaugeFunc("counterd_cluster_ring_members",
		"Members on the current routing ring (alive + suspect).",
		func() float64 { return float64(len(n.ring.Load().Members())) })
	for _, state := range []MemberState{StateAlive, StateSuspect, StateDead} {
		st := state
		reg.GaugeFuncVec("counterd_cluster_members",
			"Members in the local table, by failure-detector state.",
			[]string{"state"}, []string{st.String()},
			func() float64 { return float64(n.mem.CountState(st)) })
	}
}

// Store returns the node's underlying store.
func (n *Node) Store() *server.Store { return n.st }

// Ready is the cluster-level readiness check behind /readyz: the store must
// be durably writable (WAL open and unpoisoned), the node must not have
// announced its departure, the durable ownership state must reflect the
// current ring version, and no partition may still await its rebalance
// install. A joining node therefore reports unready exactly until its
// partitions are warm — the Kubernetes readiness gate that keeps traffic
// off cold replicas.
func (n *Node) Ready() error {
	if err := n.st.Ready(); err != nil {
		return err
	}
	if n.mem.Left() {
		return errors.New("cluster: node is decommissioning")
	}
	return n.reb.ready(n.ring.Load().Version())
}

// Ring returns the node's current routing ring.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Membership returns the node's member table.
func (n *Node) Membership() *Membership { return n.mem }

func (n *Node) rebuildRing() {
	n.ring.Store(NewRing(n.mem.RingMembers(), n.cfg.RF, n.cfg.VNodes))
}

// Start seeds the member table from cfg.Join, runs one synchronous gossip
// round (so a joining node routes correctly before its first write), and
// launches the gossip, replication-drain, and anti-entropy loops.
func (n *Node) Start() {
	for _, s := range n.cfg.Join {
		n.mem.AddSeed(s)
	}
	n.reopenOutboxes()
	n.gossipRound()
	n.runLoop(n.cfg.GossipInterval, func() {
		n.gossipRound()
		n.mem.Tick()
	})
	n.runLoop(n.cfg.ReplInterval, n.drainOutboxes)
	n.runLoop(n.cfg.AntiEntropyInterval, n.antiEntropyRound)
	n.runLoop(n.cfg.RebalanceInterval, n.reb.step)
}

func (n *Node) runLoop(every time.Duration, fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// Stop halts the background loops and closes the outbox logs. Pending
// hints stay on disk for the next start. Safe to call more than once.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.pool.Close()
	n.obMu.Lock()
	defer n.obMu.Unlock()
	for peer, o := range n.outboxes {
		if err := o.close(); err != nil && !errors.Is(err, wal.ErrClosed) {
			n.cfg.Logf("cluster: closing outbox for %s: %v", peer, err)
		}
	}
	n.outboxes = make(map[string]*outbox)
}

// --- write path ---------------------------------------------------------

// forwardJob is a partition's key group headed to a remote coordinator.
type forwardJob struct {
	partition int
	keys      []int
	replicas  []string
}

// Ingest durably counts a batch of keys, coordinating across the ring:
// keys of partitions this node replicates are WAL-applied locally (the ack
// point) and queued to the other replicas' outboxes; keys of partitions it
// does not own are forwarded synchronously to a replica.
//
// forwarded marks a batch that already made one forwarding hop. Ring views
// can disagree during membership churn, so without a bound two nodes that
// each believe the other owns a partition would ping-pong the batch in
// nested HTTP calls until timeout. A forwarded batch is never forwarded
// again: partitions this node still does not own are queued durably to
// EVERY replica in this node's view — normal coordination minus the local
// apply — so the events land on the real owners through the replication
// drain while the chain stays one hop. The ack for those keys is the outbox
// append (durable intent), not a register apply; docs/CLUSTER.md spells out
// the delivery guarantee.
//
// The returned count is the number of keys acknowledged.
func (n *Node) Ingest(keys []int, forwarded bool) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	ring := n.ring.Load()
	nKeys := n.st.Len()
	parts := n.st.Partitions()

	// Classify each partition once, then split the batch in key order.
	type dest struct {
		local    bool
		queueAll bool // forwarded here, yet unowned: outbox to every replica
		replicas []string
	}
	dests := make(map[int]*dest)
	for _, k := range keys {
		if k < 0 || k >= nKeys {
			return 0, fmt.Errorf("%w: key %d out of range [0,%d)", server.ErrBadInput, k, nKeys)
		}
		p := snapcodec.PartitionOf(k, nKeys, parts)
		if _, ok := dests[p]; !ok {
			reps := ring.Replicas(p)
			d := &dest{replicas: reps}
			for _, r := range reps {
				if r == n.cfg.Self {
					d.local = true
				}
			}
			switch {
			case len(reps) == 0:
				// An empty ring (a decommissioned last node) still needs a
				// home for the keys.
				d.local = true
			case forwarded && !d.local:
				// The forwarder's ring view disagreed with ours. Applying
				// locally would strand the events on a non-owner (evicted at
				// the next reconcile); re-forwarding could ping-pong. Queue
				// to the owners instead.
				d.queueAll = true
			}
			dests[p] = d
		}
	}
	var local []int
	remote := make(map[int]*forwardJob)
	queued := make(map[int]*forwardJob)
	fan := make(map[string][]int)
	for _, k := range keys {
		p := snapcodec.PartitionOf(k, nKeys, parts)
		d := dests[p]
		switch {
		case d.queueAll:
			job, ok := queued[p]
			if !ok {
				job = &forwardJob{partition: p, replicas: d.replicas}
				queued[p] = job
			}
			job.keys = append(job.keys, k)
		case d.local:
			local = append(local, k)
			for _, r := range d.replicas {
				if r != n.cfg.Self {
					fan[r] = append(fan[r], k)
				}
			}
		default:
			job, ok := remote[p]
			if !ok {
				job = &forwardJob{partition: p, replicas: d.replicas}
				remote[p] = job
			}
			job.keys = append(job.keys, k)
		}
	}

	applied := 0
	// Epoch-tag every queued hint on a windowed store: the drain may run
	// after a bucket rotation, and the tag is what lets the receiver heal
	// the keys into their origin bucket instead of smearing them into its
	// current one. Read the epoch AFTER the local apply — Apply ticks the
	// window first, so the keys landed at the post-tick epoch.
	tagged := n.st.Windowed()
	if len(local) > 0 {
		if err := n.st.Apply(local); err != nil {
			return 0, err
		}
		applied += len(local)
		epoch := n.st.WindowEpoch()
		// Fan out only after the local (durable) apply: the outbox ships
		// exactly what was acknowledged.
		for peer, g := range fan {
			ob, err := n.outboxFor(peer)
			if err == nil {
				err = ob.append(g, epoch, tagged)
			}
			if err != nil {
				// Replication intent lost, data not: the keys are in the
				// local WAL and anti-entropy still spreads their effect.
				n.cfg.Logf("cluster: queueing %d keys for %s: %v", len(g), peer, err)
			}
		}
	}
	for _, job := range queued {
		// Coordination minus the local apply: the keys ack once they sit
		// durably in at least one owner's outbox (ideally all — each owner's
		// delivery is that replica's copy).
		ok := false
		var lastErr error
		epoch := n.st.WindowEpoch()
		for _, peer := range job.replicas {
			ob, err := n.outboxFor(peer)
			if err == nil {
				err = ob.append(job.keys, epoch, tagged)
			}
			if err != nil {
				lastErr = err
				n.cfg.Logf("cluster: queueing %d forwarded keys for %s: %v", len(job.keys), peer, err)
				continue
			}
			ok = true
		}
		if !ok {
			return applied, fmt.Errorf("cluster: queueing forwarded partition %d: %w", job.partition, lastErr)
		}
		applied += len(job.keys)
	}
	for _, job := range remote {
		if err := n.forward(job); err != nil {
			return applied, err
		}
		applied += len(job.keys)
	}
	return applied, nil
}

// forward sends a partition's keys to its replicas, trying the primary
// first, until one coordinates the write. The fwd marker caps the chain at
// one hop (see Ingest).
func (n *Node) forward(job *forwardJob) error {
	var lastErr error
	for _, peer := range job.replicas {
		if m, ok := n.mem.State(peer); ok && m.State == StateDead {
			continue
		}
		// Chunk by MaxForward (clamped to the store batch cap) so the
		// peer's Apply can never reject the batch as oversized.
		if err := n.postKeysChunked(peer, "/inc?fwd=1", job.keys); err != nil {
			lastErr = err
			continue
		}
		n.forwards.Add(1)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no live replica for partition %d", job.partition)
	}
	return fmt.Errorf("cluster: forward partition %d: %w", job.partition, lastErr)
}

// outboxFor returns (opening on demand) the peer's durable hint log.
func (n *Node) outboxFor(peer string) (*outbox, error) {
	n.obMu.Lock()
	defer n.obMu.Unlock()
	if o, ok := n.outboxes[peer]; ok {
		return o, nil
	}
	dir := filepath.Join(n.cfg.HintDir, fmt.Sprintf("%016x", hash64(peer)))
	o, wasReset, err := openOutbox(dir, wal.Options{Policy: n.cfg.hintPolicy})
	if err != nil {
		return nil, err
	}
	if wasReset {
		n.cfg.Logf("cluster: outbox for %s was corrupt; dropped pending hints", peer)
	}
	// Leave a human-readable marker of which peer this hashed dir serves.
	_ = os.WriteFile(filepath.Join(dir, "peer.txt"), []byte(peer+"\n"), 0o644)
	n.outboxes[peer] = o
	return o, nil
}

// reopenOutboxes revives on-disk hint queues left by a previous process,
// so leftover hinted batches drain promptly instead of waiting for fresh
// write traffic toward the same peer to reopen them (and /cluster/info
// reports their true depth from the start).
func (n *Node) reopenOutboxes() {
	ents, err := os.ReadDir(n.cfg.HintDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(n.cfg.HintDir, e.Name(), "peer.txt"))
		if err != nil {
			n.cfg.Logf("cluster: hint dir %s has no peer marker; leaving it", e.Name())
			continue
		}
		peer := strings.TrimSpace(string(raw))
		if peer == "" || peer == n.cfg.Self {
			continue
		}
		if _, err := n.outboxFor(peer); err != nil {
			n.cfg.Logf("cluster: reopening outbox for %s: %v", peer, err)
		}
	}
}

// drainOutboxes ships queued hints to every alive peer, preferring the
// peer's gossiped wire listener over HTTP POSTs.
func (n *Node) drainOutboxes() {
	n.obMu.Lock()
	peers := make(map[string]*outbox, len(n.outboxes))
	for p, o := range n.outboxes {
		peers[p] = o
	}
	n.obMu.Unlock()
	for peer, o := range peers {
		if o.pending() == 0 {
			continue
		}
		if m, ok := n.mem.State(peer); ok && m.State != StateAlive {
			continue // hinted handoff: hold until the peer returns
		}
		if err := o.drain(n.cfg.MaxForward, func(chunk []int, epoch uint64, tagged bool) error {
			if err := n.sendRepl(peer, chunk, epoch, tagged); err != nil {
				return err
			}
			n.replSent.Add(uint64(len(chunk)))
			return nil
		}); err != nil {
			n.cfg.Logf("cluster: draining outbox for %s: %v", peer, err)
		}
	}
}

// sendRepl ships one replication chunk to peer: over the pooled persistent
// wire connection when the peer gossips a wire address, falling back to the
// HTTP POST /cluster/repl path when it has none or the wire attempt fails
// at the transport level. A wire *RemoteError is the peer's store rejecting
// the batch — HTTP would answer the same way, so it is returned, not
// retried on the other transport. The one exception: a 400 to an
// epoch-tagged REPLAT frame means the peer predates the frame, and the HTTP
// path (which carries the epoch in JSON) is tried instead.
func (n *Node) sendRepl(peer string, chunk []int, epoch uint64, tagged bool) error {
	if wa := n.mem.WireAddr(peer); wa != "" {
		var err error
		if tagged {
			_, err = n.pool.SendReplAt(wa, chunk, epoch)
		} else {
			_, err = n.pool.SendRepl(wa, chunk)
		}
		if err == nil {
			n.replWire.Add(uint64(len(chunk)))
			return nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && !(tagged && re.Code == 400) {
			return err
		}
		n.cfg.Logf("cluster: wire repl to %s (%s) failed, falling back to http: %v", peer, wa, err)
	}
	if tagged {
		return n.postKeysAt(peer, "/cluster/repl", chunk, epoch)
	}
	return n.postKeys(peer, "/cluster/repl", chunk)
}

// postKeysChunked posts keys in MaxForward-sized slices. Chunks deliver
// independently, so a mid-sequence failure leaves a prefix applied — the
// same at-least-once exposure as every other delivery path here.
func (n *Node) postKeysChunked(peer, path string, keys []int) error {
	for lo := 0; lo < len(keys); lo += n.cfg.MaxForward {
		hi := min(lo+n.cfg.MaxForward, len(keys))
		if err := n.postKeys(peer, path, keys[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// postKeysAt POSTs {"keys": [...], "epoch": e} to peer+path — the HTTP
// spelling of an epoch-tagged replication chunk. A peer that predates the
// field simply ignores it (the pre-delta smear-into-current behavior).
func (n *Node) postKeysAt(peer, path string, keys []int, epoch uint64) error {
	body, err := json.Marshal(map[string]any{"keys": keys, "epoch": epoch})
	if err != nil {
		return err
	}
	return n.postBody(peer, path, body)
}

// postKeys POSTs {"keys": [...]} to peer+path, expecting a 2xx.
func (n *Node) postKeys(peer, path string, keys []int) error {
	body, err := json.Marshal(map[string][]int{"keys": keys})
	if err != nil {
		return err
	}
	return n.postBody(peer, path, body)
}

func (n *Node) postBody(peer, path string, body []byte) error {
	resp, err := n.client.Post(peer+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s%s: status %d: %s", peer, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// --- wire ingest --------------------------------------------------------

// applyRepl replica-applies keys locally in store-cap slices — the verb
// behind both POST /cluster/repl and wire REPL frames. Replication traffic
// may bundle many coordinator batches (and a peer's MaxForward may exceed
// ours), so it slices by the store's own batch cap to never be rejected as
// oversized.
//
// Keys land only in partitions this node owns on its current ring, or holds
// frozen (a surrendered copy absorbing a stale coordinator's late drain —
// its frozen registers still hand that history to the new owners). Keys for
// any other partition are DROPPED, deliberately: this node's copy would be
// evicted or never read, and redirecting the delivery to the current owners
// would double-count — every replica of the old ring received its own copy
// of the event, and each redirected copy would land on the same new owners.
// Dropping is safe because the event's coordinator applied it to its own
// registers at ack time, and that copy reaches the new owners through the
// rebalance transfer or anti-entropy.
func (n *Node) applyRepl(keys []int) (int, error) {
	return n.applyReplAt(keys, 0, false)
}

// applyReplAt is applyRepl with an optional origin bucket epoch: tagged
// chunks land through Store.ApplyAt, which heals the keys into the bucket
// they were counted in at the sender (or drops the ones whose bucket has
// rotated out of the local ring) instead of smearing a delayed drain into
// the current bucket.
func (n *Node) applyReplAt(keys []int, epoch uint64, tagged bool) (int, error) {
	ring := n.ring.Load()
	nKeys := n.st.Len()
	parts := n.st.Partitions()
	keep := keys
	accepts := make(map[int]bool)
	filtered := false
	for _, k := range keys {
		if k < 0 || k >= nKeys {
			return 0, fmt.Errorf("%w: key %d out of range [0,%d)", server.ErrBadInput, k, nKeys)
		}
		p := snapcodec.PartitionOf(k, nKeys, parts)
		if _, ok := accepts[p]; !ok {
			accepts[p] = ring.Owns(n.cfg.Self, p) || n.st.FrozenPartition(p)
		}
		if !accepts[p] {
			filtered = true
		}
	}
	if filtered {
		keep = make([]int, 0, len(keys))
		for _, k := range keys {
			if accepts[snapcodec.PartitionOf(k, nKeys, parts)] {
				keep = append(keep, k)
			}
		}
		n.replDropped.Add(uint64(len(keys) - len(keep)))
	}
	received := 0
	for lo := 0; lo < len(keep); lo += n.st.MaxBatch() {
		hi := min(lo+n.st.MaxBatch(), len(keep))
		if tagged {
			applied, err := n.st.ApplyAt(keep[lo:hi], epoch)
			if err != nil {
				return lo, err
			}
			received += applied
		} else {
			if err := n.st.Apply(keep[lo:hi]); err != nil {
				return lo, err
			}
			received += hi - lo
		}
	}
	n.replRecvd.Add(uint64(received))
	// The sender's chunk is fully handled either way; acknowledging the
	// drops (and the expired tagged keys) keeps its outbox moving.
	return len(keys), nil
}

// WireSink adapts the node to the wire server's ingest interface: BATCH
// frames coordinate across the ring exactly like POST /inc, REPL frames
// replica-apply exactly like POST /cluster/repl, and FETCH frames serve
// rebalance partition handoffs exactly like GET /cluster/handoff. All
// transports share the WAL-stage+apply path underneath, so recovery replays
// them identically.
func (n *Node) WireSink() wire.Sink { return nodeSink{n} }

type nodeSink struct{ n *Node }

func (s nodeSink) Batch(keys []int) (int, error) { return s.n.Ingest(keys, false) }
func (s nodeSink) Repl(keys []int) (int, error)  { return s.n.applyRepl(keys) }
func (s nodeSink) Fetch(partition int, ringVer uint64) (byte, []byte, error) {
	return s.n.reb.serve(partition, ringVer)
}

// ReplAt serves REPLAT frames: an epoch-tagged replica apply, exactly like
// POST /cluster/repl with an "epoch" field.
func (s nodeSink) ReplAt(keys []int, epoch uint64) (int, error) {
	return s.n.applyReplAt(keys, epoch, true)
}

// BlockHashes serves BHASH frames: the partition's write version plus one
// FNV-1a hash per snapcodec block — the exchange that lets delta
// anti-entropy transfer only divergent blocks.
func (s nodeSink) BlockHashes(partition int) (uint64, []uint64, error) {
	hashes, err := s.n.st.PartitionBlockHashes(partition)
	if err != nil {
		return 0, nil, err
	}
	return s.n.st.PartitionVersion(partition), hashes, nil
}

// BlockDelta serves BDELTA frames: a snapcodec delta snapshot of the
// partition restricted to the requested blocks.
func (s nodeSink) BlockDelta(partition int, blocks []uint32) ([]byte, error) {
	var buf bytes.Buffer
	if err := s.n.st.PartitionDeltaTo(&buf, partition, blocks); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- gossip -------------------------------------------------------------

type gossipMsg struct {
	From    string   `json:"from"`
	Members []Member `json:"members"`
}

// gossipRound exchanges member tables with up to GossipFanout random peers.
func (n *Node) gossipRound() {
	peers := n.mem.Peers()
	rand.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > n.cfg.GossipFanout {
		peers = peers[:n.cfg.GossipFanout]
	}
	for _, peer := range peers {
		n.gossipWith(peer)
	}
}

func (n *Node) gossipWith(peer string) {
	msg := gossipMsg{From: n.cfg.Self, Members: n.mem.Snapshot()}
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	resp, err := n.client.Post(peer+"/cluster/gossip", "application/json", bytes.NewReader(body))
	if err != nil {
		return // Tick ages the peer toward suspect/dead
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var reply gossipMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return
	}
	n.mem.Contact(peer, true)
	n.mem.MergeFrom(reply.Members)
}

// --- HTTP surface -------------------------------------------------------

// RingInfo is the GET /cluster/ring payload: everything a smart client
// needs to build the identical ring and route without coordination.
// Version fingerprints the member set (Ring.Version, hex) so a client can
// tell at a glance whether its cached ring is stale.
type RingInfo struct {
	Self       string   `json:"self"`
	N          int      `json:"n"`
	Partitions int      `json:"partitions"`
	RF         int      `json:"rf"`
	VNodes     int      `json:"vnodes"`
	Version    string   `json:"version"`
	Members    []Member `json:"members"`
}

// Info is the GET /cluster/info payload.
type Info struct {
	Self          string           `json:"self"`
	RingVersion   string           `json:"ringVersion"`
	Members       []Member         `json:"members"`
	OwnedParts    []int            `json:"ownedPartitions"`
	OutboxPending map[string]int64 `json:"outboxPending"`
	AERounds      uint64           `json:"antiEntropyRounds"`
	Forwards      uint64           `json:"forwards"`
	ReplSent      uint64           `json:"replKeysSent"`
	ReplWire      uint64           `json:"replKeysWire"`
	ReplReceived  uint64           `json:"replKeysReceived"`
	ReplDropped   uint64           `json:"replKeysDropped"`
	// PartVersions is each partition's write-version counter — the ops
	// dashboard diffs consecutive polls to paint per-partition heat.
	PartVersions []uint64 `json:"partitionVersions"`
}

// Handler returns the node's full HTTP surface: the cluster admin API plus
// the store API (internal/server), with POST /inc re-routed through the
// cluster write path.
//
//	POST /inc                     coordinate a batch across the ring (ack =
//	                              durable on ≥1 replica, queued to the rest)
//	POST /cluster/repl            replica-apply a batch locally (no re-fan-out)
//	POST /cluster/gossip          member-table exchange
//	GET  /cluster/ring            RingInfo for smart clients
//	GET  /cluster/info            membership/replication introspection
//	GET  /cluster/rebalance       RebalanceStatus: per-partition transfer
//	                              progress and handoff offers
//	GET  /cluster/handoff/{p}     one partition's snapshot for a rebalance
//	                              pull (?ring=<hex> fences the puller's view;
//	                              X-Handoff-Role: owner|frozen)
//	GET  /cluster/phash/{p}       partition hash + write version; ?blocks=1
//	                              adds per-block hashes for delta repair
//	GET  /cluster/bdelta/{p}      snapcodec delta of ?blocks=i,j,k (ascending)
//	POST /cluster/bdelta/{p}      max-join a block delta; ?ver=<hex> makes the
//	                              merge conditional (409 on version race)
//	GET  /estimate/{key}          store read, but 421 while the key's
//	                              partition awaits its rebalance install
//	GET  /topk                    store read, but 421 when ?partition= is
//	                              pending (unscoped top-k is served as-is)
//	GET  /readyz                  cluster readiness (shadows the store's:
//	                              WAL healthy AND ring reconciled AND no
//	                              pending partitions AND not decommissioning)
//	GET  /cluster/dash            embedded live ops dashboard (HTML, no
//	                              external assets)
//	(everything else)             internal/server.Handler (incl. /metrics,
//	                              /healthz liveness)
//
// Like the store surface, every route is also served under /v1/ — and the
// cluster's own routes MUST shadow the store's on both prefixes, or a
// /v1/inc would fall through to the store handler and count locally without
// ring coordination.
//
// GET /snapshot/{p} is deliberately NOT 421-shadowed: anti-entropy repair
// pulls it peer-to-peer and must keep working mid-rebalance. /estimates is
// not shadowed either — a cluster-wide register dump is an explicitly
// approximate merge surface, documented to tolerate in-flight transfers.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	storeH := server.Handler(n.st)
	reg := n.st.Metrics()
	handle := func(method, path string, h http.HandlerFunc) {
		h = server.Instrument(reg, path, h)
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" "+path, h) // legacy unprefixed alias
	}
	// Readiness shadows the store's /readyz with the cluster-level check:
	// WAL health alone is not readiness while a join is still installing
	// partitions.
	handle("GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		server.WriteReady(w, n.Ready())
	})
	handle("GET", "/cluster/dash", n.handleDash)
	handle("POST", "/inc", func(w http.ResponseWriter, r *http.Request) {
		keys, _, ok := readKeys(w, r)
		if !ok {
			return
		}
		applied, err := n.Ingest(keys, r.URL.Query().Get("fwd") == "1")
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]int{"applied": applied})
	})
	handle("POST", "/cluster/repl", func(w http.ResponseWriter, r *http.Request) {
		keys, epoch, ok := readKeys(w, r)
		if !ok {
			return
		}
		var err error
		if epoch != nil {
			_, err = n.applyReplAt(keys, *epoch, true)
		} else {
			_, err = n.applyRepl(keys)
		}
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]int{"applied": len(keys)})
	})
	handle("POST", "/cluster/gossip", func(w http.ResponseWriter, r *http.Request) {
		var msg gossipMsg
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad gossip payload: %w", err))
			return
		}
		n.mem.MergeFrom(msg.Members)
		if msg.From != "" {
			n.mem.Contact(msg.From, true)
		}
		writeJSON(w, gossipMsg{From: n.cfg.Self, Members: n.mem.Snapshot()})
	})
	handle("GET", "/cluster/phash/{partition}", func(w http.ResponseWriter, r *http.Request) {
		p, err := strconv.Atoi(r.PathValue("partition"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		h, err := n.st.PartitionHash(p)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		reply := map[string]any{
			"partition": p,
			"hash":      fmt.Sprintf("%016x", h),
			"version":   fmt.Sprintf("%016x", n.st.PartitionVersion(p)),
		}
		if r.URL.Query().Get("blocks") == "1" {
			// Per-block hashes for delta anti-entropy (the HTTP fallback of
			// the wire BHASH frame). Absent from the reply of a pre-delta
			// build — the syncing peer then falls back to a full exchange.
			hashes, err := n.st.PartitionBlockHashes(p)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			hex := make([]string, len(hashes))
			for i, bh := range hashes {
				hex[i] = fmt.Sprintf("%016x", bh)
			}
			reply["blocks"] = hex
		}
		writeJSON(w, reply)
	})
	handle("GET", "/cluster/bdelta/{partition}", func(w http.ResponseWriter, r *http.Request) {
		p, err := strconv.Atoi(r.PathValue("partition"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		blocks, err := parseBlockList(r.URL.Query().Get("blocks"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var buf bytes.Buffer
		if err := n.st.PartitionDeltaTo(&buf, p, blocks); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(buf.Bytes())
	})
	handle("POST", "/cluster/bdelta/{partition}", func(w http.ResponseWriter, r *http.Request) {
		p, err := strconv.Atoi(r.PathValue("partition"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		wantVer := server.VersionAny
		if q := r.URL.Query().Get("ver"); q != "" {
			if wantVer, err = strconv.ParseUint(q, 16, 64); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad version: %w", err))
				return
			}
		}
		blob, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading delta: %w", err))
			return
		}
		if err := n.st.MergeMaxDelta(blob, wantVer); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]any{"partition": p, "merged": true})
	})
	handle("GET", "/cluster/ring", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, RingInfo{
			Self:       n.cfg.Self,
			N:          n.st.Len(),
			Partitions: n.st.Partitions(),
			RF:         n.cfg.RF,
			VNodes:     n.cfg.VNodes,
			Version:    fmt.Sprintf("%016x", n.ring.Load().Version()),
			Members:    n.mem.Snapshot(),
		})
	})
	handle("GET", "/cluster/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, n.info())
	})
	handle("GET", "/cluster/rebalance", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, n.reb.status())
	})
	handle("GET", "/cluster/handoff/{partition}", func(w http.ResponseWriter, r *http.Request) {
		p, err := strconv.Atoi(r.PathValue("partition"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		ver, err := strconv.ParseUint(r.URL.Query().Get("ring"), 16, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad ring version: %w", err))
			return
		}
		role, blob, err := n.reb.serve(p, ver)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		roleName := "owner"
		if role == wire.RoleFrozen {
			roleName = "frozen"
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Handoff-Role", roleName)
		w.Write(blob)
	})
	// Read shadowing: a partition awaiting its rebalance install answers 421
	// (Misdirected Request) so smart clients refresh their ring and re-route
	// to a warm owner instead of reading a cold copy.
	handle("GET", "/estimate/{key}", func(w http.ResponseWriter, r *http.Request) {
		if key, err := strconv.Atoi(r.PathValue("key")); err == nil && key >= 0 && key < n.st.Len() {
			p := snapcodec.PartitionOf(key, n.st.Len(), n.st.Partitions())
			if n.st.PendingPartition(p) {
				httpError(w, http.StatusMisdirectedRequest,
					fmt.Errorf("partition %d is rebalancing onto this node; retry a warm replica", p))
				return
			}
		}
		storeH.ServeHTTP(w, r)
	})
	handle("GET", "/topk", func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("partition"); q != "" {
			if p, err := strconv.Atoi(q); err == nil && n.st.PendingPartition(p) {
				httpError(w, http.StatusMisdirectedRequest,
					fmt.Errorf("partition %d is rebalancing onto this node; retry a warm replica", p))
				return
			}
		}
		storeH.ServeHTTP(w, r)
	})
	mux.Handle("/", storeH)
	return mux
}

// Drain flushes every per-peer outbox, returning when all are empty or ctx
// expires. It does not stop the node: the replication loop keeps running
// and new writes keep being accepted — callers sequence their own shutdown
// around it.
func (n *Node) Drain(ctx context.Context) error {
	for {
		n.drainOutboxes()
		if n.outboxesEmpty() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (n *Node) outboxesEmpty() bool {
	n.obMu.Lock()
	defer n.obMu.Unlock()
	for _, o := range n.outboxes {
		if o.pending() > 0 {
			return false
		}
	}
	return true
}

// Decommission removes this node from the ring and hands its state off: it
// marks itself left (gossip spreads the departure), keeps serving reads and
// handoff pulls while every surrendered partition transfers to its new
// owners, then drains the outboxes. The caller keeps the HTTP and wire
// listeners up until Decommission returns, then stops the node and exits.
// Returns ctx's error if the handoff cannot finish in time — state is still
// intact and a restart rejoins cleanly.
func (n *Node) Decommission(ctx context.Context) error {
	n.mem.Leave()
	n.gossipRound() // push the departure now; don't wait a gossip interval
	for {
		n.reb.step()
		if n.reb.idle() {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: decommission handoff: %w", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
	return n.Drain(ctx)
}

func (n *Node) info() Info {
	ring := n.ring.Load()
	info := Info{
		Self:          n.cfg.Self,
		RingVersion:   fmt.Sprintf("%016x", ring.Version()),
		Members:       n.mem.Snapshot(),
		OutboxPending: make(map[string]int64),
		AERounds:      n.aeRounds.Value(),
		Forwards:      n.forwards.Value(),
		ReplSent:      n.replSent.Value(),
		ReplWire:      n.replWire.Value(),
		ReplReceived:  n.replRecvd.Value(),
		ReplDropped:   n.replDropped.Value(),
	}
	info.PartVersions = make([]uint64, n.st.Partitions())
	for p := range info.PartVersions {
		info.PartVersions[p] = n.st.PartitionVersion(p)
	}
	for p := 0; p < n.st.Partitions(); p++ {
		if ring.Owns(n.cfg.Self, p) {
			info.OwnedParts = append(info.OwnedParts, p)
		}
	}
	n.obMu.Lock()
	for peer, o := range n.outboxes {
		info.OutboxPending[peer] = o.pending()
	}
	n.obMu.Unlock()
	return info
}

// readKeys parses the {"key": k} / {"keys": [...]} body shared by /inc and
// /cluster/repl, plus the optional "epoch" tag replication drains attach
// (nil when absent — a peer that predates epoch tagging).
func readKeys(w http.ResponseWriter, r *http.Request) ([]int, *uint64, bool) {
	var req struct {
		Key   *int    `json:"key"`
		Keys  []int   `json:"keys"`
		Epoch *uint64 `json:"epoch"`
	}
	// Same cap as internal/server's maxIncBody, so /inc accepts the same
	// bodies in cluster and single-node mode.
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return nil, nil, false
	}
	keys := req.Keys
	if req.Key != nil {
		keys = append(keys, *req.Key)
	}
	if len(keys) == 0 {
		httpError(w, http.StatusBadRequest, errors.New(`need "key" or "keys"`))
		return nil, nil, false
	}
	return keys, req.Epoch, true
}

// parseBlockList parses the comma-separated, strictly-ascending block list
// of a GET /cluster/bdelta request ("3,17,40"). Ascending order is required
// by the snapcodec delta encoder; rejecting it here keeps a malformed URL a
// 400 instead of a mid-encode failure.
func parseBlockList(q string) ([]uint32, error) {
	if q == "" {
		return nil, errors.New(`need "blocks" query parameter`)
	}
	parts := strings.Split(q, ",")
	blocks := make([]uint32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad block %q: %w", p, err)
		}
		if len(blocks) > 0 && uint32(v) <= blocks[len(blocks)-1] {
			return nil, fmt.Errorf("block list not strictly ascending at %q", p)
		}
		blocks = append(blocks, uint32(v))
	}
	return blocks, nil
}

// statusFor extends the store surface's classifier with the rebalance
// handoff errors, so both layers (and the wire transport) share one error
// taxonomy: not-a-source is 409 (retry after convergence), a malformed
// handoff request is 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errNotSource):
		return http.StatusConflict
	case errors.Is(err, errBadHandoff):
		return http.StatusBadRequest
	}
	return server.StatusFor(err)
}

// StatusFor is the node-level error classifier, exported for wire-server
// configuration (ServerConfig.ErrorCode) so ERROR frames carry the same
// codes the HTTP surface answers.
func StatusFor(err error) int { return statusFor(err) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "code": code})
}
