package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/server"
	"repro/internal/wire"
)

// Anti-entropy: the repair path that makes replicas converge no matter what
// the write path dropped (a crashed coordinator's unsent outbox, a hint log
// lost to power failure, a partition that healed). The exchange unit is a
// snapcodec-compressed partition snapshot, and the join is the
// register-wise maximum (Store.MergeMax) — correct between replicas because
// every replica of a partition applies the same logical increment stream
// (the write path delivers each acknowledged batch to every replica at
// least once) and registers are monotone under increments: the bigger
// register is simply the replica that has absorbed more of the stream. Max
// is idempotent, so repeated rounds settle at identical registers. Remark
// 2.4's distributional merge is NOT used here — between same-stream
// replicas it would double-count; it remains the right join for disjoint
// streams (POST /merge).
//
// When to merge matters as much as how. The replicas absorb the shared
// stream with independent randomness, so at any instant their registers are
// two slightly-diverged random walks; taking the max of in-flight replicas
// keeps the upper envelope of that noise, and doing so every round under
// active load ratchets the registers upward — a measurable estimate bias
// that grows with exchange frequency (see TestClusterReplicationConverges,
// which caught exactly this). So a round only merges a partition when one
// of two gates opens:
//
//  1. Repair: a peer replica has just come back from suspect/dead (or this
//     node just started). Its registers may be missing whole stretches of
//     the stream; merging now is worth a one-time sliver of max-bias.
//  2. Quiescent divergence: the partition has seen no local writes for a
//     full round AND the replicas' register hashes differ. No writes means
//     no replication in flight, so a hash mismatch is real divergence, and
//     merging static registers is ratchet-free (once converged the hashes
//     match and rounds become pure hash checks).
//
// In a healthy, loaded cluster anti-entropy therefore costs one tiny hash
// exchange per partition per round and adds zero bias; the replication
// outbox is what keeps replicas tracking the stream.
//
// Both gates additionally require the PAIR to be op-quiescent: neither side
// may hold queued (undrained) batches for the other. State transfer and op
// replay deliver the same history through different channels — if a node
// max-joins a peer's registers and the peer's hint drain then re-applies
// the same events as increments, they are counted twice (measured at
// 10–20% inflation in the crash/recovery test when repair raced hinted
// handoff). Ordering ops-before-state per pair closes the overlap; the
// residue is at most one in-flight drain window of a third replica.
func (n *Node) antiEntropyRound() {
	ring := n.ring.Load()
	// Ring flips hand off through the rebalancer, not anti-entropy. Until
	// this node has reconciled the current ring (pending/frozen partitions
	// durably classified), its "owned" set is provisional — a round now
	// could push a cold newly-owned partition to a peer as if it were warm.
	if !n.reb.reconciledTo(ring.Version()) {
		return
	}
	parts := n.st.Partitions()
	n.aeRounds.Inc()
	round := n.aeRounds.Value()
	n.noteRecoveries()
	// pairSafe memoizes per-round whether a pair is op-quiescent.
	safeCache := map[string]bool{}
	pairSafe := func(peer string) bool {
		if v, ok := safeCache[peer]; ok {
			return v
		}
		v := n.pairQuiesced(peer)
		safeCache[peer] = v
		return v
	}
	for p := 0; p < parts; p++ {
		reps := ring.Replicas(p)
		mine := false
		var peers []string
		for _, r := range reps {
			if r == n.cfg.Self {
				mine = true
			} else if m, ok := n.mem.State(r); ok && m.State == StateAlive {
				peers = append(peers, r)
			}
		}
		if !mine || len(peers) == 0 {
			continue
		}
		if n.st.PendingPartition(p) {
			// Awaiting a rebalance install: a max-join of a partial pull
			// would commit a merge record and clear the pending mark with
			// incomplete data. The rebalancer is the only transfer path for
			// pending partitions.
			continue
		}

		// Gate 1: repair every freshly-recovered peer replica — once the
		// pair's hint queues are empty in both directions.
		repaired := false
		for _, peer := range peers {
			if !n.needsRepair[peer] {
				continue
			}
			if !pairSafe(peer) {
				// Ops still in flight between us: let the drains finish and
				// retry the repair next round.
				n.repairFailed[peer] = true
				continue
			}
			if err := n.syncPartition(p, peer); err != nil {
				n.repairFailed[peer] = true
				n.cfg.Logf("cluster: repair partition %d with %s: %v", p, peer, err)
			}
			repaired = true
		}
		if repaired {
			n.lastPartVer[p] = n.st.PartitionVersion(p)
			continue
		}

		// Gate 2: quiescent divergence with the round's rotating peer.
		ver := n.st.PartitionVersion(p)
		if ver != n.lastPartVer[p] {
			n.lastPartVer[p] = ver // writes in flight; check again next round
			continue
		}
		peer := peers[(int(round)+p)%len(peers)]
		if !pairSafe(peer) {
			continue // the peer's queued ops for us would double-count
		}
		same, err := n.hashMatches(p, peer)
		if err != nil {
			n.cfg.Logf("cluster: anti-entropy hash of partition %d from %s: %v", p, peer, err)
			continue
		}
		if same {
			continue
		}
		if err := n.syncPartition(p, peer); err != nil {
			n.cfg.Logf("cluster: anti-entropy partition %d with %s: %v", p, peer, err)
		}
		n.lastPartVer[p] = n.st.PartitionVersion(p)
	}
	// A peer is fully repaired once a round touched every shared partition
	// without a failure.
	for peer := range n.needsRepair {
		if !n.repairFailed[peer] {
			delete(n.needsRepair, peer)
		}
		delete(n.repairFailed, peer)
	}
}

// noteRecoveries diffs member states against the previous round and marks
// peers that returned to life (or appeared) as needing repair. Runs only on
// the anti-entropy goroutine; the maps are loop-local state.
func (n *Node) noteRecoveries() {
	for _, m := range n.mem.Snapshot() {
		if m.ID == n.cfg.Self {
			continue
		}
		prev, known := n.prevStates[m.ID]
		if m.State == StateAlive && (!known || prev != StateAlive) {
			n.needsRepair[m.ID] = true
		}
		n.prevStates[m.ID] = m.State
	}
}

// pairQuiesced reports whether no replication ops are queued between this
// node and peer in either direction: our outbox for them is empty, and
// their /cluster/info shows an empty outbox for us. Merging state while
// either queue is non-empty would count the queued events twice (once as
// transferred registers, once when the drain applies them).
func (n *Node) pairQuiesced(peer string) bool {
	n.obMu.Lock()
	o := n.outboxes[peer]
	n.obMu.Unlock()
	if o != nil && o.pending() > 0 {
		return false
	}
	resp, err := n.client.Get(peer + "/cluster/info")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	var info Info
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return false
	}
	return info.OutboxPending[n.cfg.Self] == 0
}

// hashMatches compares the local register hash of partition p with peer's.
func (n *Node) hashMatches(p int, peer string) (bool, error) {
	local, err := n.st.PartitionHash(p)
	if err != nil {
		return false, err
	}
	resp, err := n.client.Get(fmt.Sprintf("%s/cluster/phash/%d", peer, p))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var reply struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&reply); err != nil {
		return false, err
	}
	return reply.Hash == fmt.Sprintf("%016x", local), nil
}

// syncPartition converges partition p with peer. It first attempts a block
// delta exchange — shipping only the registers that actually diverged — and
// falls back to the full pull-push snapshot exchange when the delta path
// cannot run (old peer, too many divergent blocks, a version race against
// concurrent writes, or any transport failure). The fallback is always
// correct: the full exchange is what the delta path optimizes, not replaces.
func (n *Node) syncPartition(p int, peer string) error {
	done, err := n.syncPartitionDelta(p, peer)
	if done {
		return nil
	}
	if err != nil {
		n.cfg.Logf("cluster: delta sync partition %d with %s: %v (falling back to full)", p, peer, err)
	}
	return n.syncPartitionFull(p, peer)
}

// syncPartitionDelta runs one block-granular max-join exchange of partition
// p with peer: compare per-block fingerprints, pull the peer's divergent
// blocks as a snapcodec delta, max-join them, then push our (now joined)
// view of the same blocks back. Returns done=false (optionally with an
// error worth logging) when the caller should run the full exchange
// instead.
func (n *Node) syncPartitionDelta(p int, peer string) (done bool, err error) {
	// Read the local version BEFORE the local hashes: it is the optimistic
	// guard on the pull merge. If local writes land between the hash diff
	// and the merge, the version moves, MergeMaxDelta answers ErrConflict,
	// and we fall back to the full exchange rather than merge against a
	// stale diff.
	localVer := n.st.PartitionVersion(p)
	local, err := n.st.PartitionBlockHashes(p)
	if err != nil {
		return false, err
	}
	peerVer, remote, err := n.peerBlockHashes(p, peer)
	if err != nil {
		return false, err
	}
	if len(remote) != len(local) {
		// Different block geometry (mismatched engine config): only the
		// full exchange can reconcile that.
		return false, nil
	}
	var diff []uint32
	for i := range local {
		if local[i] != remote[i] {
			diff = append(diff, uint32(i))
		}
	}
	if len(diff) == 0 {
		// The register hashes diverged (that is why we are here) but every
		// block matches now — the peer caught up between the hash check and
		// this exchange. Converged; nothing to ship.
		n.aeDeltaSyncs.Inc()
		return true, nil
	}
	if len(diff)*2 >= len(local) {
		// Majority of blocks diverged: the delta framing overhead plus two
		// hash exchanges would cost more than one full snapshot. Typical
		// after long partitions or a cold peer.
		return false, nil
	}

	// What a full exchange would have shipped, for the bytes-saved counter.
	// Encoding to a counting writer costs CPU only; delta syncs are rare
	// (behind the repair/quiescence gates), so this stays off the hot path.
	var full countingWriter
	if err := n.st.PartitionSnapshotTo(&full, p); err != nil {
		return false, err
	}

	// Pull the peer's divergent blocks and fold them in, guarded by the
	// version read above.
	blob, err := n.fetchBlockDelta(p, peer, diff)
	if err != nil {
		return false, err
	}
	if err := n.st.MergeMaxDelta(blob, localVer); err != nil {
		if errors.Is(err, server.ErrConflict) {
			return false, nil // local writes raced the diff; re-diff via full
		}
		return false, fmt.Errorf("pull merge: %w", err)
	}
	saved := int64(full) - int64(len(blob))

	// Push our joined view of the same blocks back, conditional on the
	// version the peer reported with its hashes. A 409 means the peer took
	// writes since; its registers already dominate or will re-diff next
	// round — push the full snapshot so this exchange still converges it.
	var buf bytes.Buffer
	if err := n.st.PartitionDeltaTo(&buf, p, diff); err != nil {
		return false, err
	}
	pushLen := int64(buf.Len())
	status, err := n.postBlob(fmt.Sprintf("%s/cluster/bdelta/%d?ver=%016x", peer, p, peerVer), &buf)
	switch {
	case err != nil:
		return false, err
	case status == http.StatusConflict:
		if err := n.pushFull(p, peer); err != nil {
			return false, fmt.Errorf("push after version race: %w", err)
		}
	case status != http.StatusOK:
		return false, fmt.Errorf("push: status %d", status)
	default:
		saved += int64(full) - pushLen
	}
	if saved > 0 {
		n.aeBytesSaved.Add(uint64(saved))
	}
	n.aeDeltaSyncs.Inc()
	return true, nil
}

// peerBlockHashes fetches peer's (version, per-block hashes) for partition
// p: over the pooled wire connection when the peer gossips a wire address,
// over HTTP otherwise. A wire 400 means the peer predates the BHASH frame —
// its HTTP surface may still answer (?blocks=1 is ignored by builds that
// predate it, which the caller detects as a missing blocks field).
func (n *Node) peerBlockHashes(p int, peer string) (uint64, []uint64, error) {
	if wa := n.mem.WireAddr(peer); wa != "" {
		ver, hashes, err := n.pool.BlockHashes(wa, p)
		if err == nil {
			return ver, hashes, nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Code != 400 {
			return 0, nil, err
		}
	}
	resp, err := n.client.Get(fmt.Sprintf("%s/cluster/phash/%d?blocks=1", peer, p))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, fmt.Errorf("phash: status %d", resp.StatusCode)
	}
	var reply struct {
		Version string   `json:"version"`
		Blocks  []string `json:"blocks"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return 0, nil, err
	}
	if reply.Blocks == nil {
		return 0, nil, errors.New("peer has no block hashes (pre-delta build)")
	}
	ver, err := strconv.ParseUint(reply.Version, 16, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("bad version %q: %w", reply.Version, err)
	}
	hashes := make([]uint64, len(reply.Blocks))
	for i, s := range reply.Blocks {
		if hashes[i], err = strconv.ParseUint(s, 16, 64); err != nil {
			return 0, nil, fmt.Errorf("bad block hash %q: %w", s, err)
		}
	}
	return ver, hashes, nil
}

// fetchBlockDelta pulls a snapcodec delta of the given blocks of partition
// p from peer, wire first with the usual 400→HTTP fallback.
func (n *Node) fetchBlockDelta(p int, peer string, blocks []uint32) ([]byte, error) {
	if wa := n.mem.WireAddr(peer); wa != "" {
		blob, err := n.pool.BlockDelta(wa, p, blocks)
		if err == nil {
			return blob, nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Code != 400 {
			return nil, err
		}
	}
	list := make([]string, len(blocks))
	for i, b := range blocks {
		list[i] = strconv.FormatUint(uint64(b), 10)
	}
	resp, err := n.client.Get(fmt.Sprintf("%s/cluster/bdelta/%d?blocks=%s", peer, p, strings.Join(list, ",")))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("bdelta: status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<30))
}

// postBlob POSTs an octet-stream body and returns the status code (the
// caller distinguishes 409 from other failures).
func (n *Node) postBlob(url string, body io.Reader) (int, error) {
	resp, err := n.client.Post(url, "application/octet-stream", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// pushFull ships our full view of partition p to peer's /mergemax.
func (n *Node) pushFull(p int, peer string) error {
	var buf bytes.Buffer
	if err := n.st.PartitionSnapshotTo(&buf, p); err != nil {
		return err
	}
	pushResp, err := n.client.Post(peer+"/mergemax", "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer pushResp.Body.Close()
	if pushResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(pushResp.Body, 512))
		return fmt.Errorf("push: status %d: %s", pushResp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, pushResp.Body)
	return nil
}

// countingWriter measures an encode without keeping the bytes.
type countingWriter int64

func (w *countingWriter) Write(b []byte) (int, error) {
	*w += countingWriter(len(b))
	return len(b), nil
}

// syncPartitionFull runs one pull-push max-join exchange of partition p
// with peer, full snapshots in both directions.
func (n *Node) syncPartitionFull(p int, peer string) error {
	// Pull the peer's view and fold it in.
	resp, err := n.client.Get(fmt.Sprintf("%s/snapshot/%d", peer, p))
	if err != nil {
		return err
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pull: status %d", resp.StatusCode)
	}
	if err := n.st.MergeMax(blob); err != nil {
		return fmt.Errorf("pull merge: %w", err)
	}

	// Push our (now joined) view back so one exchange converges both sides.
	return n.pushFull(p, peer)
}
