// Package exact provides deterministic counters: the ⌈log2 N⌉-bit baseline
// that the paper's lower bound (Theorem 1.1) says is optimal when
// log n ≤ log log n + log(1/ε) + log log(1/δ), and the fixed-width
// saturating counter used as the deterministic prefix inside Morris+.
package exact

import (
	"errors"
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/counter"
)

// Counter is an exact, unbounded deterministic counter. Its state is the
// binary representation of N itself, so StateBits grows like ⌈log2(N+1)⌉.
type Counter struct {
	n       uint64
	maxBits int
}

var _ counter.Mergeable = (*Counter)(nil)
var _ counter.Serializable = (*Counter)(nil)

// New returns a zeroed exact counter.
func New() *Counter { return &Counter{} }

// Increment adds one event.
func (c *Counter) Increment() { c.IncrementBy(1) }

// IncrementBy adds n events.
func (c *Counter) IncrementBy(n uint64) {
	c.n = counter.SaturatingAdd(c.n, n)
	if b := counter.BitLen(c.n); b > c.maxBits {
		c.maxBits = b
	}
}

// Estimate returns N exactly.
func (c *Counter) Estimate() float64 { return float64(c.n) }

// EstimateUint64 returns N exactly.
func (c *Counter) EstimateUint64() uint64 { return c.n }

// StateBits returns ⌈log2(N+1)⌉.
func (c *Counter) StateBits() int { return counter.BitLen(c.n) }

// MaxStateBits returns the lifetime maximum of StateBits.
func (c *Counter) MaxStateBits() int { return c.maxBits }

// Name implements counter.Counter.
func (c *Counter) Name() string { return "exact" }

// Merge adds other's exact count into the receiver.
func (c *Counter) Merge(other counter.Counter) error {
	o, ok := other.(*Counter)
	if !ok {
		return fmt.Errorf("exact: cannot merge with %T", other)
	}
	c.IncrementBy(o.n)
	return nil
}

// EncodeState writes N in self-delimiting form.
func (c *Counter) EncodeState(w *bitpack.Writer) { w.WriteUvarint(c.n) }

// DecodeState restores N.
func (c *Counter) DecodeState(r *bitpack.Reader) error {
	n, err := r.ReadUvarint()
	if err != nil {
		return err
	}
	c.n = n
	if b := counter.BitLen(n); b > c.maxBits {
		c.maxBits = b
	}
	return nil
}

// Saturating is a deterministic counter of fixed width w bits that sticks at
// 2^w − 1 once reached. Morris+ uses one (width ⌈log2(N_a+2)⌉) as the exact
// prefix up to N_a = 8/a, per Section 1 and Appendix A of the paper.
type Saturating struct {
	n     uint64
	width int
	cap   uint64
}

// NewSaturating returns a saturating counter of the given width (1..63).
func NewSaturating(width int) *Saturating {
	if width < 1 || width > 63 {
		panic(fmt.Sprintf("exact: invalid saturating width %d", width))
	}
	return &Saturating{width: width, cap: (1 << uint(width)) - 1}
}

// NewSaturatingFor returns the narrowest saturating counter able to
// distinguish all values 0..limit and "≥ limit+1" (width ⌈log2(limit+2)⌉).
func NewSaturatingFor(limit uint64) *Saturating {
	width := counter.BitLen(limit + 1)
	if width < 1 {
		width = 1
	}
	return NewSaturating(width)
}

// Increment adds one event, saturating at the cap.
func (s *Saturating) Increment() { s.IncrementBy(1) }

// IncrementBy adds n events, saturating at the cap.
func (s *Saturating) IncrementBy(n uint64) {
	v := counter.SaturatingAdd(s.n, n)
	if v > s.cap {
		v = s.cap
	}
	s.n = v
}

// Value returns the stored (possibly saturated) count.
func (s *Saturating) Value() uint64 { return s.n }

// Saturated reports whether the counter has hit its cap and therefore no
// longer tracks the true count.
func (s *Saturating) Saturated() bool { return s.n == s.cap }

// Cap returns the saturation value 2^width − 1.
func (s *Saturating) Cap() uint64 { return s.cap }

// Width returns the fixed width in bits; this is the counter's state size
// regardless of the stored value, matching a hardware register.
func (s *Saturating) Width() int { return s.width }

// EncodeState writes the fixed-width value.
func (s *Saturating) EncodeState(w *bitpack.Writer) { w.WriteBits(s.n, s.width) }

// DecodeState restores a value written by EncodeState with the same width.
func (s *Saturating) DecodeState(r *bitpack.Reader) error {
	v, err := r.ReadBits(s.width)
	if err != nil {
		return err
	}
	if v > s.cap {
		return errors.New("exact: decoded value exceeds cap")
	}
	s.n = v
	return nil
}
