package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

// Rebalancing: the subsystem that turns a ring change (join, leave, death,
// decommission) from "new owners start cold and anti-entropy eventually
// fills them in" into a coordinated state transfer. The unit of transfer is
// one partition snapshot; the protocol is pull-based and fully decentralized
// — every node runs the same loop against its own view of the ring, and the
// ring version (Ring.Version, a fingerprint of the member set) is the fence
// that keeps two nodes from transferring against diverged views.
//
// Per ring flip, every node classifies each partition:
//
//   - newly owned  → PENDING: the node keeps serving writes for it (they
//     accumulate as the partition's post-flip stream) but answers reads
//     with 421 until it installs a copy of the history, pulled from a
//     source that has one. While pending, the write path's outboxes are the
//     buffer for in-flight traffic: forwarders and stale coordinators queue
//     the partition's live writes durably toward the new owners.
//   - no longer owned → FROZEN: the node stops absorbing coordinated
//     writes for it (routing now points elsewhere) but keeps the registers,
//     offering them to the new owners until every one confirms its install;
//     only then is the partition evicted (WAL-logged reset).
//   - owned before and after → warm; nothing to do.
//
// The cutover is per-partition and atomic: the pending mark clears exactly
// when the install's merge record commits (Store.InstallPartition), at
// which point reads stop answering 421 and the partition is warm — there is
// no window where a new owner serves a cold copy.
//
// Which join installs a pulled copy is declared by the SOURCE, because only
// the source knows what its copy absorbed:
//
//   - RoleOwner: a live continuing owner (or a holder surrendered
//     mid-install, whose partial copy overlaps the puller's stream). The
//     puller applies the idempotent replica max-join — never double-counts,
//     and anti-entropy closes any gap later.
//   - RoleFrozen: a surrendered complete copy, frozen at the flip. Its
//     stream (everything before the flip) and the puller's local absorption
//     (everything after) are disjoint, so the puller applies the Remark 2.4
//     merge on top of its own registers — history plus live tail, nothing
//     lost, nothing double-counted. A frozen copy is only offered once the
//     holder is op-quiescent with the partition's other old replicas (no
//     queued hints between them), so the copy is complete when served.
//
// Everything is durable: the pending/frozen/owned classification is a WAL
// ownership record (wal.RecOwn), installs are merge records that subtract
// from pending on replay, and evicts are logged resets — a node killed at
// any point in a transfer recovers knowing exactly which partitions it
// still owes or is owed.
type rebalancer struct {
	n *Node

	// stepMu serializes whole rebalance rounds: the background loop and an
	// active Decommission drive step concurrently.
	stepMu sync.Mutex

	mu         sync.Mutex
	reconciled uint64             // ring version the sets below reflect (0 = never)
	prevRing   *Ring              // ring of the last reconcile (nil after restart)
	transfers  map[int]*transfer  // pending-partition metadata
	frozen     map[int]*surrender // frozen-partition metadata

	// Counters live in the store's metrics registry so /cluster/rebalance
	// and /metrics read the same atomics.
	moved     *metrics.Counter   // partitions installed (pulled or vacuous)
	evicted   *metrics.Counter   // surrendered partitions evicted after confirm
	bytes     *metrics.Counter   // snapshot bytes pulled
	mCutover  *metrics.Histogram // install flip-to-warm latency
	cutoverNs atomic.Int64       // last install's flip-to-warm latency
}

// transfer is one pending partition's in-memory progress.
type transfer struct {
	started  time.Time
	attempts int
	// bootstrap marks a pend created from the empty baseline (a fresh store
	// joining): if every replica of the partition is in the same position
	// and no frozen copy exists anywhere, there is no history to pull and
	// the primary may declare itself installed.
	bootstrap bool
}

// surrender is one frozen partition's in-memory metadata.
type surrender struct {
	// partial marks a copy surrendered mid-install: it holds only what this
	// node absorbed while pending, possibly overlapping other replicas'
	// streams, so it is offered as a max-join (RoleOwner), never as a
	// disjoint merge. Recovered frozen partitions are conservatively partial
	// (max-join can undercount a truly disjoint tail, but never inflates).
	partial bool
	// oldReplicas are the partition's other replicas on the ring it was
	// surrendered from — the peers whose queued hints must drain before a
	// complete copy is offered. nil (after restart) gates on every alive
	// peer instead.
	oldReplicas []string
	ready       bool // complete copy offerable now (quiescence gate passed)
}

// TransferStatus is one pending partition's progress on the status surface.
type TransferStatus struct {
	Partition int     `json:"partition"`
	Attempts  int     `json:"attempts"`
	AgeMs     float64 `json:"ageMs"`
}

// RebalanceStatus is the GET /cluster/rebalance payload — both the
// operator's progress view and the protocol's peer-probing surface (pullers
// select sources and holders confirm installs by reading each other's
// status).
type RebalanceStatus struct {
	Self          string           `json:"self"`
	RingVersion   string           `json:"ringVersion"`
	Reconciled    bool             `json:"reconciled"`
	Pending       []int            `json:"pending,omitempty"`
	Frozen        []int            `json:"frozen,omitempty"`
	FrozenReady   []int            `json:"frozenReady,omitempty"`
	FrozenPartial []int            `json:"frozenPartial,omitempty"`
	Transfers     []TransferStatus `json:"transfers,omitempty"`
	Moved         uint64           `json:"partitionsMoved"`
	Evicted       uint64           `json:"partitionsEvicted"`
	BytesStreamed uint64           `json:"bytesStreamed"`
	LastCutoverMs float64          `json:"lastCutoverMs"`
}

// errNotSource reports a handoff request this node cannot serve right now —
// ring views diverged, the partition is pending here too, or a frozen copy
// is not yet quiescent. Mapped to 409: the puller retries next round.
var errNotSource = errors.New("cluster: not a handoff source for this partition at this ring version")

func newRebalancer(n *Node) *rebalancer {
	rb := &rebalancer{
		n:         n,
		transfers: make(map[int]*transfer),
		frozen:    make(map[int]*surrender),
	}
	reg := n.st.Metrics()
	rb.moved = reg.Counter("counterd_rebalance_partitions_moved_total",
		"Partitions installed by the rebalancer (pulled or vacuous).")
	rb.evicted = reg.Counter("counterd_rebalance_partitions_evicted_total",
		"Surrendered partitions evicted after every new owner confirmed its install.")
	rb.bytes = reg.Counter("counterd_rebalance_bytes_streamed_total",
		"Partition snapshot bytes pulled during rebalance handoffs.")
	rb.mCutover = reg.Histogram("counterd_rebalance_cutover_seconds",
		"Per-partition flip-to-warm latency: ring flip (pend) to install commit.",
		metrics.ExpBuckets(1e-3, 2, 18))
	reg.GaugeFunc("counterd_rebalance_transfers",
		"Pending partitions currently awaiting a rebalance install.",
		func() float64 {
			rb.mu.Lock()
			defer rb.mu.Unlock()
			return float64(len(rb.transfers))
		})
	// A restarted node re-adopts its durable state: recorded pendings resume
	// as transfers, recorded frozen partitions resume as (conservatively
	// partial) surrenders, and the recorded ring version counts as
	// reconciled — if the ring moved while the node was down, the next step
	// reconciles against the recorded owned set.
	if ver, pending, frozen, _, ok := n.st.Ownership(); ok {
		rb.reconciled = ver
		for _, p := range pending {
			rb.transfers[p] = &transfer{started: time.Now()}
		}
		for _, p := range frozen {
			rb.frozen[p] = &surrender{partial: true}
		}
	}
	return rb
}

// step is one rebalance round: fold any ring flip into the durable
// ownership state, try to install every pending partition, and evict every
// surrendered partition whose new owners all confirmed.
func (rb *rebalancer) step() {
	rb.stepMu.Lock()
	defer rb.stepMu.Unlock()
	cur := rb.n.ring.Load()
	rb.mu.Lock()
	ever := rb.reconciled != 0
	rb.mu.Unlock()
	if !ever && len(cur.Members()) <= 1 && len(rb.n.cfg.Join) > 0 {
		// A fresh joiner still sees only itself: adopting that solo ring
		// would vacuously install everything and then never pull. Wait for
		// gossip to deliver the real member set.
		return
	}
	rb.reconcile(cur)
	pr := &probe{n: rb.n, statuses: make(map[string]*RebalanceStatus), quiet: make(map[string]bool)}
	rb.gateFrozen(pr)
	rb.pull(cur, pr)
	rb.sweep(cur, pr)
}

// reconcile folds a ring flip into the ownership state: classify every
// partition against the last recorded owned set, log one RecOwn, and update
// the in-memory transfer/surrender metadata.
func (rb *rebalancer) reconcile(cur *Ring) {
	ver := cur.Version()
	rb.mu.Lock()
	if rb.reconciled == ver {
		rb.mu.Unlock()
		return
	}
	prev := rb.prevRing
	rb.mu.Unlock()

	st := rb.n.st
	self := rb.n.cfg.Self
	parts := st.Partitions()
	_, recPending, recFrozen, recOwned, ok := st.Ownership()
	pendSet := intSet(recPending)
	frozSet := intSet(recFrozen)
	ownedSet := intSet(recOwned)
	emptyBaseline := false
	if !ok {
		if st.Fresh() {
			// Empty baseline: a fresh store owes itself an install of
			// everything it owns.
			emptyBaseline = true
		} else {
			// Legacy baseline: a store with pre-rebalance data is assumed
			// warm everywhere it ever replicated — partitions it does not
			// own on this ring surrender (and evict) through the normal
			// path.
			for p := 0; p < parts; p++ {
				ownedSet[p] = true
			}
		}
	}

	var newPend, newFroz, newOwned []int
	addPend := make(map[int]bool)
	addFrozPartial := make(map[int]bool)
	addFrozComplete := make(map[int]bool)
	for p := 0; p < parts; p++ {
		owned := cur.Owns(self, p)
		if owned {
			newOwned = append(newOwned, p)
		}
		switch {
		case owned && frozSet[p]:
			// Re-owned before the surrender completed. A complete copy is
			// simply warm again; a partial one never finished its install,
			// so it resumes pending.
			rb.mu.Lock()
			s := rb.frozen[p]
			rb.mu.Unlock()
			if s == nil || s.partial {
				newPend = append(newPend, p)
				addPend[p] = true
			}
		case owned && pendSet[p]:
			newPend = append(newPend, p) // still owed; retarget to this ring
		case owned && !ownedSet[p]:
			newPend = append(newPend, p) // newly owned, cold
			addPend[p] = true
		case owned:
			// Continuing owner; warm.
		case pendSet[p]:
			// Lost mid-install: the registers hold only what this node
			// absorbed while pending — real acknowledged writes that must
			// still reach the new owners, but an incomplete (and possibly
			// overlapping) copy, so it surrenders as partial.
			newFroz = append(newFroz, p)
			addFrozPartial[p] = true
		case ownedSet[p] || frozSet[p]:
			newFroz = append(newFroz, p) // surrendered (or still held) history
			if !frozSet[p] {
				addFrozComplete[p] = true
			}
		}
	}

	if err := st.SetOwnership(ver, newPend, newFroz, newOwned); err != nil {
		rb.n.cfg.Logf("cluster: rebalance: recording ownership epoch %016x: %v", ver, err)
		return
	}

	rb.mu.Lock()
	for p := range addPend {
		rb.transfers[p] = &transfer{started: time.Now(), bootstrap: emptyBaseline}
		delete(rb.frozen, p)
	}
	for p := range addFrozPartial {
		rb.frozen[p] = &surrender{partial: true, oldReplicas: others(cur, p, self)}
		delete(rb.transfers, p)
	}
	for p := range addFrozComplete {
		old := others(cur, p, self)
		if prev != nil {
			old = others(prev, p, self)
		}
		rb.frozen[p] = &surrender{oldReplicas: old}
	}
	// Drop metadata for partitions the new record no longer tracks.
	pendNow := intSet(newPend)
	frozNow := intSet(newFroz)
	for p := range rb.transfers {
		if !pendNow[p] {
			delete(rb.transfers, p)
		}
	}
	for p := range rb.frozen {
		if !frozNow[p] {
			delete(rb.frozen, p)
		}
	}
	rb.reconciled = ver
	rb.prevRing = cur
	pend, froz := len(rb.transfers), len(rb.frozen)
	rb.mu.Unlock()
	if pend+froz > 0 {
		rb.n.cfg.Logf("cluster: rebalance: ring %016x — %d partitions to install, %d to surrender", ver, pend, froz)
	}
}

// gateFrozen re-checks the quiescence gate of every complete frozen copy:
// it is offerable once no replication hints are queued between this node
// and the partition's other old replicas in either direction — after that,
// the copy can no longer grow, so what a puller receives is the complete
// pre-flip history.
func (rb *rebalancer) gateFrozen(pr *probe) {
	rb.mu.Lock()
	type gate struct {
		p     int
		peers []string
	}
	var gates []gate
	for p, s := range rb.frozen {
		if !s.partial {
			gates = append(gates, gate{p, s.oldReplicas})
		}
	}
	rb.mu.Unlock()
	for _, g := range gates {
		peers := g.peers
		if peers == nil {
			peers = rb.n.mem.AlivePeers() // restart lost the old ring; gate wide
		}
		ready := true
		for _, peer := range peers {
			if m, ok := rb.n.mem.State(peer); ok && m.State == StateDead {
				continue // its queued tail is unreachable either way
			}
			if !pr.quiesced(peer) {
				ready = false
				break
			}
		}
		rb.mu.Lock()
		if s := rb.frozen[g.p]; s != nil && !s.partial {
			s.ready = ready
		}
		rb.mu.Unlock()
	}
}

// pull tries to install every pending partition this round. Source
// preference: a warm co-owner (max-join, tolerant of everything), then a
// complete frozen copy (disjoint merge), then a partial frozen copy
// (max-join). A bootstrap pend with no source anywhere resolves vacuously
// at the primary.
func (rb *rebalancer) pull(cur *Ring, pr *probe) {
	ver := cur.Version()
	rb.mu.Lock()
	if rb.reconciled != ver {
		rb.mu.Unlock()
		return
	}
	parts := make([]int, 0, len(rb.transfers))
	for p := range rb.transfers {
		parts = append(parts, p)
	}
	rb.mu.Unlock()
	sort.Ints(parts)
	verHex := fmt.Sprintf("%016x", ver)
	self := rb.n.cfg.Self

	for _, p := range parts {
		if !rb.n.st.PendingPartition(p) {
			// Installed out of band (an anti-entropy push landed a full warm
			// copy); just drop the metadata.
			rb.finish(p, 0, false)
			continue
		}
		reps := cur.Replicas(p)
		if len(reps) == 1 && reps[0] == self {
			// Sole member: no peer can hold this ring's history.
			rb.completeVacuous(p, cur)
			continue
		}

		var warm, frozenReady, frozenPartial []string
		coPending := 0
		coOwners := 0
		frozenAnywhere := false
		peersConverged := true
		for _, peer := range reps {
			if peer == self {
				continue
			}
			coOwners++
			s := pr.status(peer)
			if s == nil || s.RingVersion != verHex || !s.Reconciled {
				continue
			}
			if intSetHas(s.Pending, p) {
				coPending++
			} else {
				warm = append(warm, peer)
			}
		}
		for _, peer := range rb.n.mem.AlivePeers() {
			s := pr.status(peer)
			if s == nil || s.RingVersion != verHex || !s.Reconciled {
				// A peer that has not reconciled this ring yet may still be
				// about to freeze (or still hold) this partition's history —
				// its classification is unknown, so the vacuous tie-break
				// below must not fire.
				peersConverged = false
				continue
			}
			if intSetHas(s.Frozen, p) {
				frozenAnywhere = true
			}
			if intSetHas(s.FrozenReady, p) {
				frozenReady = append(frozenReady, peer)
			} else if intSetHas(s.FrozenPartial, p) {
				frozenPartial = append(frozenPartial, peer)
			}
		}

		sources := append(append(warm, frozenReady...), frozenPartial...)
		installed := false
		// A warm co-owner first offers a block delta: when this node re-owns
		// a partition it mostly still holds (a bounce, a brief surrender),
		// only the blocks that moved since transfer. A genuinely cold join
		// fails the divergence threshold inside pullDelta — every non-empty
		// block differs — and takes the full snapshot path below. Frozen
		// sources never delta: their disjoint Remark 2.4 merge has no
		// block-wise max-join spelling.
		for _, src := range warm {
			if !pr.quiesced(src) {
				// State transfer and op replay carry the same history: a
				// max-join of src's blocks while the pair still holds queued
				// replication batches lets the later drain re-apply those
				// events as increments — the ops-before-state double count
				// (docs/CLUSTER.md). Skip the delta; a later round (or the
				// full path's own fences) picks it up.
				continue
			}
			ok, err := rb.pullDelta(src, p)
			if err != nil {
				rb.n.cfg.Logf("cluster: rebalance: delta pull of partition %d from %s: %v", p, src, err)
				continue // transport trouble: another warm source may answer
			}
			if ok {
				installed = true
			}
			// ok==false is the threshold verdict; it would repeat against
			// every warm source, so go straight to the full transfer.
			break
		}
		for _, src := range sources {
			if installed {
				break
			}
			if err := rb.pullFrom(src, p, ver); err != nil {
				rb.n.cfg.Logf("cluster: rebalance: pulling partition %d from %s: %v", p, src, err)
				continue
			}
			installed = true
		}
		if installed {
			continue
		}

		rb.mu.Lock()
		t := rb.transfers[p]
		bootstrap := t != nil && t.bootstrap
		if t != nil {
			t.attempts++
		}
		rb.mu.Unlock()
		// Bootstrap tie-break: a brand-new cluster has every replica pending
		// and nothing frozen anywhere — there is no history, so the primary
		// declares itself installed and becomes the others' warm source. The
		// peersConverged fence matters when a fresh node joins a LOADED ring:
		// until every alive peer has reconciled this ring version, an old
		// owner may not have surrendered (frozen) the partition yet, and a
		// vacuous install now would let the sweep evict that sole copy.
		if bootstrap && cur.Primary(p) == self && coPending == coOwners && coOwners > 0 &&
			peersConverged && !frozenAnywhere {
			rb.completeVacuous(p, cur)
		}
	}
}

// pullDelta tries to warm a pending partition by pulling only its divergent
// blocks from a warm co-owner. Returns (false, nil) when the block diff says
// a full transfer is cheaper — the caller falls through to pullFrom. The
// install commits through MergeMaxDelta's merge record, which clears the
// pending mark exactly like a full InstallPartition; the join is the replica
// max-join, which is what a warm (RoleOwner) source calls for anyway.
func (rb *rebalancer) pullDelta(src string, p int) (bool, error) {
	n := rb.n
	local, err := n.st.PartitionBlockHashes(p)
	if err != nil {
		return false, err
	}
	_, remote, err := n.peerBlockHashes(p, src)
	if err != nil {
		return false, err
	}
	if len(remote) != len(local) {
		return false, nil
	}
	var diff []uint32
	for i := range local {
		if local[i] != remote[i] {
			diff = append(diff, uint32(i))
		}
	}
	if len(diff) == 0 || len(diff)*2 >= len(local) {
		// Identical copies still need the install record a full pull commits
		// (a zero-block delta has nothing to hang it on); majority-divergent
		// copies (cold joins) ship fewer bytes as one full snapshot.
		return false, nil
	}
	blob, err := n.fetchBlockDelta(p, src, diff)
	if err != nil {
		return false, err
	}
	// No version guard: this node is not serving reads for p (it is
	// pending), and a max-join of any block subset is safe regardless of
	// concurrent writes on the source — anti-entropy owns later convergence.
	if err := n.st.MergeMaxDelta(blob, server.VersionAny); err != nil {
		return false, err
	}
	rb.bytes.Add(uint64(len(blob)))
	n.rebDeltaPull.Inc()
	rb.finish(p, len(blob), true)
	return true, nil
}

// pullFrom fetches one partition snapshot from src — over the wire protocol
// when src gossips a wire address (falling back to HTTP if the peer
// predates the handoff frames or the transport fails), over the HTTP
// handoff endpoint otherwise — and installs it under the join the source's
// role declares.
func (rb *rebalancer) pullFrom(src string, p int, ver uint64) error {
	role, blob, err := rb.fetch(src, p, ver)
	if err != nil {
		return err
	}
	if err := rb.n.st.InstallPartition(blob, role == wire.RoleFrozen); err != nil {
		return err
	}
	rb.bytes.Add(uint64(len(blob)))
	rb.finish(p, len(blob), true)
	return nil
}

func (rb *rebalancer) fetch(src string, p int, ver uint64) (byte, []byte, error) {
	if wa := rb.n.mem.WireAddr(src); wa != "" {
		role, blob, err := rb.n.pool.Fetch(wa, p, ver)
		if err == nil {
			return role, blob, nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Code != 400 {
			return 0, nil, err // the source answered; HTTP would answer the same
		}
		// A 400 is a peer that predates the FETCH frame; a transport error
		// is a dead wire listener. Both fall back to HTTP.
	}
	return rb.httpFetch(src, p, ver)
}

func (rb *rebalancer) httpFetch(src string, p int, ver uint64) (byte, []byte, error) {
	resp, err := rb.n.client.Get(fmt.Sprintf("%s/v1/cluster/handoff/%d?ring=%016x", src, p, ver))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, nil, fmt.Errorf("handoff: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	role := wire.RoleOwner
	if resp.Header.Get("X-Handoff-Role") == "frozen" {
		role = wire.RoleFrozen
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return 0, nil, err
	}
	return role, blob, nil
}

// completeVacuous marks a pending partition installed without a pull — no
// source exists because there is no history. Logged as a fresh ownership
// record so recovery agrees.
func (rb *rebalancer) completeVacuous(p int, cur *Ring) {
	st := rb.n.st
	ver, pending, frozen, owned, ok := st.Ownership()
	if !ok || ver != cur.Version() || !intSetHas(pending, p) {
		return
	}
	kept := pending[:0]
	for _, q := range pending {
		if q != p {
			kept = append(kept, q)
		}
	}
	if err := st.SetOwnership(ver, kept, frozen, owned); err != nil {
		rb.n.cfg.Logf("cluster: rebalance: vacuous install of partition %d: %v", p, err)
		return
	}
	rb.finish(p, 0, true)
}

// finish drops a pending partition's metadata and records the install
// metrics.
func (rb *rebalancer) finish(p, blobLen int, count bool) {
	rb.mu.Lock()
	t := rb.transfers[p]
	delete(rb.transfers, p)
	rb.mu.Unlock()
	if !count {
		return
	}
	rb.moved.Add(1)
	if t != nil {
		rb.cutoverNs.Store(time.Since(t.started).Nanoseconds())
		rb.mCutover.ObserveSince(t.started)
	}
	rb.n.cfg.Logf("cluster: rebalance: installed partition %d (%d bytes)", p, blobLen)
}

// sweep evicts surrendered partitions whose new owners have all confirmed:
// every replica on the current ring reports this ring version reconciled
// with the partition no longer pending. An unreachable or lagging owner
// holds the evict — the frozen copy is the safety net until every owner
// provably has the history.
func (rb *rebalancer) sweep(cur *Ring, pr *probe) {
	ver := cur.Version()
	verHex := fmt.Sprintf("%016x", ver)
	rb.mu.Lock()
	if rb.reconciled != ver {
		rb.mu.Unlock()
		return
	}
	parts := make([]int, 0, len(rb.frozen))
	for p := range rb.frozen {
		parts = append(parts, p)
	}
	rb.mu.Unlock()
	sort.Ints(parts)

	for _, p := range parts {
		confirmed := true
		for _, owner := range cur.Replicas(p) {
			s := pr.status(owner)
			if s == nil || s.RingVersion != verHex || !s.Reconciled || intSetHas(s.Pending, p) {
				confirmed = false
				break
			}
		}
		if !confirmed {
			continue
		}
		if err := rb.n.st.EvictPartition(p); err != nil {
			rb.n.cfg.Logf("cluster: rebalance: evicting partition %d: %v", p, err)
			continue
		}
		rb.mu.Lock()
		delete(rb.frozen, p)
		rb.mu.Unlock()
		rb.evicted.Add(1)
		rb.n.cfg.Logf("cluster: rebalance: evicted surrendered partition %d", p)
	}
}

// reconciledTo reports whether the durable ownership state reflects ring
// version ver.
func (rb *rebalancer) reconciledTo(ver uint64) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.reconciled == ver
}

// ready is the rebalancer's contribution to /readyz: the durable ownership
// state must reflect ring version ver and no partition may still await its
// install. Frozen copies do not block readiness — the node serves its owned
// set fine while surrendered history drains to the new owners.
func (rb *rebalancer) ready(ver uint64) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.reconciled != ver {
		return fmt.Errorf("cluster: ownership not reconciled to ring %016x", ver)
	}
	if n := len(rb.transfers); n > 0 {
		return fmt.Errorf("cluster: %d partitions awaiting rebalance install", n)
	}
	return nil
}

// idle reports whether the rebalancer owes and is owed nothing at the
// current ring: reconciled, no pending installs, no frozen copies left to
// hand off.
func (rb *rebalancer) idle() bool {
	cur := rb.n.ring.Load()
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.reconciled == cur.Version() && len(rb.transfers) == 0 && len(rb.frozen) == 0
}

// status builds the RebalanceStatus payload.
func (rb *rebalancer) status() RebalanceStatus {
	cur := rb.n.ring.Load()
	ver := cur.Version()
	s := RebalanceStatus{
		Self:          rb.n.cfg.Self,
		RingVersion:   fmt.Sprintf("%016x", ver),
		Moved:         rb.moved.Value(),
		Evicted:       rb.evicted.Value(),
		BytesStreamed: rb.bytes.Value(),
		LastCutoverMs: float64(rb.cutoverNs.Load()) / 1e6,
	}
	rb.mu.Lock()
	s.Reconciled = rb.reconciled == ver
	for p, t := range rb.transfers {
		s.Pending = append(s.Pending, p)
		s.Transfers = append(s.Transfers, TransferStatus{
			Partition: p,
			Attempts:  t.attempts,
			AgeMs:     float64(time.Since(t.started).Nanoseconds()) / 1e6,
		})
	}
	for p, sur := range rb.frozen {
		s.Frozen = append(s.Frozen, p)
		if sur.partial {
			s.FrozenPartial = append(s.FrozenPartial, p)
		} else if sur.ready {
			s.FrozenReady = append(s.FrozenReady, p)
		}
	}
	rb.mu.Unlock()
	sort.Ints(s.Pending)
	sort.Ints(s.Frozen)
	sort.Ints(s.FrozenReady)
	sort.Ints(s.FrozenPartial)
	sort.Slice(s.Transfers, func(i, j int) bool { return s.Transfers[i].Partition < s.Transfers[j].Partition })
	return s
}

// serve answers one handoff request (shared by the wire FETCH frame and the
// HTTP endpoint): validate the puller's ring version against ours, decide
// the role our copy plays, and stream the partition snapshot.
func (rb *rebalancer) serve(p int, ringVer uint64) (role byte, blob []byte, err error) {
	cur := rb.n.ring.Load()
	if p < 0 || p >= rb.n.st.Partitions() {
		return 0, nil, fmt.Errorf("%w: partition %d out of [0, %d)", errBadHandoff, p, rb.n.st.Partitions())
	}
	rb.mu.Lock()
	converged := rb.reconciled == ringVer && cur.Version() == ringVer
	sur := rb.frozen[p]
	var frozenRole byte
	if sur != nil {
		switch {
		case sur.partial:
			frozenRole = wire.RoleOwner // partial copy: max-join only
		case sur.ready:
			frozenRole = wire.RoleFrozen
		}
	}
	rb.mu.Unlock()
	if !converged {
		return 0, nil, fmt.Errorf("%w: ring not converged to %016x", errNotSource, ringVer)
	}
	switch {
	case sur != nil && frozenRole != 0:
		role = frozenRole
	case sur != nil:
		return 0, nil, fmt.Errorf("%w: frozen copy not yet quiescent", errNotSource)
	case cur.Owns(rb.n.cfg.Self, p) && !rb.n.st.PendingPartition(p):
		role = wire.RoleOwner
	default:
		return 0, nil, fmt.Errorf("%w: partition %d", errNotSource, p)
	}
	var buf bytes.Buffer
	if err := rb.n.st.PartitionSnapshotTo(&buf, p); err != nil {
		return 0, nil, err
	}
	return role, buf.Bytes(), nil
}

// errBadHandoff is a caller fault on the handoff surface (bad partition),
// mapped to 400.
var errBadHandoff = errors.New("cluster: bad handoff request")

// probe memoizes one rebalance round's peer lookups: each peer's rebalance
// status and pair quiescence are fetched at most once per step.
type probe struct {
	n        *Node
	statuses map[string]*RebalanceStatus
	quiet    map[string]bool
}

func (pr *probe) status(peer string) *RebalanceStatus {
	if s, ok := pr.statuses[peer]; ok {
		return s
	}
	var s *RebalanceStatus
	resp, err := pr.n.client.Get(peer + "/v1/cluster/rebalance")
	if err == nil {
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var got RebalanceStatus
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&got) == nil {
				s = &got
			}
		}()
	}
	pr.statuses[peer] = s
	return s
}

func (pr *probe) quiesced(peer string) bool {
	if q, ok := pr.quiet[peer]; ok {
		return q
	}
	q := pr.n.pairQuiesced(peer)
	pr.quiet[peer] = q
	return q
}

// others returns a partition's replicas on a ring, minus one member.
func others(r *Ring, p int, self string) []string {
	var out []string
	for _, m := range r.Replicas(p) {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

func intSet(list []int) map[int]bool {
	set := make(map[int]bool, len(list))
	for _, p := range list {
		set[p] = true
	}
	return set
}

func intSetHas(list []int, p int) bool {
	for _, q := range list {
		if q == p {
			return true
		}
	}
	return false
}
