package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tb := Table{
		ID:      "T/test",
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333") // short row pads
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T/test", "demo", "a note", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bee" || lines[1] != "1,2" || lines[2] != "333," {
		t.Fatalf("csv output: %q", lines)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v / 100
}

func TestFig1Shape(t *testing.T) {
	// The reproduction target: the two ECDFs nearly coincide and the max
	// relative error at 17 bits stays in the paper's low-single-digit
	// percent regime.
	res := Fig1(Fig1Config{Trials: 1500, Seed: 1})
	if len(res.MorrisErrors) != 1500 || len(res.CsurosErrors) != 1500 {
		t.Fatal("wrong sample sizes")
	}
	maxM, maxC := 0.0, 0.0
	for i := range res.MorrisErrors {
		if res.MorrisErrors[i] > maxM {
			maxM = res.MorrisErrors[i]
		}
		if res.CsurosErrors[i] > maxC {
			maxC = res.CsurosErrors[i]
		}
	}
	if maxM > 0.06 || maxC > 0.06 {
		t.Fatalf("max rel errors %v / %v exceed 6%% at 17 bits", maxM, maxC)
	}
	if maxM < 0.002 || maxC < 0.002 {
		t.Fatalf("max rel errors %v / %v implausibly small — wrong parameterization?", maxM, maxC)
	}
	// Median (50th percentile row) of both algorithms within a factor ~3 of
	// each other: "nearly identical" curves.
	tbl := res.Table
	mid := tbl.Rows[len(tbl.Rows)/2-1]
	m := parsePct(t, mid[1])
	c := parsePct(t, mid[2])
	if m > 3*c+0.001 || c > 3*m+0.001 {
		t.Fatalf("median errors diverge: morris %v vs csuros %v", m, c)
	}
	// ECDF rows are monotone.
	prevM, prevC := -1.0, -1.0
	for _, row := range tbl.Rows {
		mm, cc := parsePct(t, row[1]), parsePct(t, row[2])
		if mm < prevM || cc < prevC {
			t.Fatalf("non-monotone ECDF rows")
		}
		prevM, prevC = mm, cc
	}
}

func TestNYSpaceShape(t *testing.T) {
	tb := NYSpace(SpaceConfig{Trials: 60, Seed: 2})
	if len(tb.Rows) != 7 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		fail, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if fail > 0.2 {
			t.Fatalf("NY failure rate %v in row %v", fail, row)
		}
	}
}

func TestMorrisPlusSpaceShape(t *testing.T) {
	tb := MorrisPlusSpace(SpaceConfig{Trials: 60, Seed: 3})
	for _, row := range tb.Rows {
		fail, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if fail > 0.2 {
			t.Fatalf("Morris+ failure rate %v in row %v", fail, row)
		}
	}
}

func TestDeltaScalingShape(t *testing.T) {
	tb := DeltaScaling(SpaceConfig{Seed: 4})
	if len(tb.Rows) != 7 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	// NY measured bits must be nearly flat: last minus first ≤ 6 bits.
	first, err := strconv.Atoi(tb.Rows[0][5])
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.Atoi(tb.Rows[len(tb.Rows)-1][5])
	if err != nil {
		t.Fatal(err)
	}
	if last-first > 6 {
		t.Fatalf("NY bits grew %d → %d across δ sweep", first, last)
	}
	// Chebyshev predicted bits must grow substantially.
	p0, err := strconv.ParseFloat(tb.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	p6, err := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if p6-p0 < 10 {
		t.Fatalf("Chebyshev predicted bits grew only %v → %v", p0, p6)
	}
}

func TestTweakNecessityShape(t *testing.T) {
	tb := TweakNecessity(TweakConfig{Trials: 50000, Seed: 5})
	for _, row := range tb.Rows {
		vanilla, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		plus, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatal(err)
		}
		target, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatal(err)
		}
		// The Appendix A separation: vanilla fails many orders of magnitude
		// above δ; Morris+ never.
		if vanilla < 1000*target {
			t.Fatalf("vanilla failure %v not ≫ δ %v", vanilla, target)
		}
		if plus != 0 {
			t.Fatalf("Morris+ failed with rate %v", plus)
		}
		// The Monte-Carlo estimate must agree with the exact DP probability
		// within sampling noise (Wilson 4σ).
		if exact <= 0 {
			t.Fatalf("exact DP failure probability %v not positive", exact)
		}
		if vanilla > 5*exact || exact > 5*vanilla {
			t.Fatalf("Monte-Carlo %v and exact %v disagree grossly", vanilla, exact)
		}
	}
}

func TestLowerBoundShape(t *testing.T) {
	tb := LowerBound(LowerBoundConfig{Trials: 60, Seed: 6})
	foundWitness := false
	for _, row := range tb.Rows {
		if !strings.Contains(row[3], "none") {
			foundWitness = true
		}
	}
	if !foundWitness {
		t.Fatal("no pumping witness found in any configuration")
	}
	// Derandomized failure rates are massive in every configuration.
	for _, row := range tb.Rows {
		det, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if det < 0.3 {
			t.Fatalf("derandomized failure rate %v suspiciously low: %v", det, row)
		}
	}
}

func TestMergeExpShape(t *testing.T) {
	tb := MergeExp(MergeConfig{Trials: 600, Seed: 7})
	if len(tb.Rows) != 6 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[5] != "pass" {
			t.Fatalf("merge row failed KS test: %v", row)
		}
	}
}

func TestAveragingShape(t *testing.T) {
	tb := Averaging(AveragingConfig{Trials: 40, Seed: 8})
	// Row layout: per target, [averaged, chebyshev, morris+, nelson-yu].
	if len(tb.Rows) != 8 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for i := 0; i < len(tb.Rows); i += 4 {
		avBits, err := strconv.Atoi(tb.Rows[i][4])
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < 4; j++ {
			bits, err := strconv.Atoi(tb.Rows[i+j][4])
			if err != nil {
				t.Fatal(err)
			}
			if bits*4 > avBits {
				t.Fatalf("method %s bits %d not ≪ averaging bits %d",
					tb.Rows[i+j][2], bits, avBits)
			}
		}
	}
}

func TestNYConstShape(t *testing.T) {
	tb := NYConst(SpaceConfig{Trials: 60, Seed: 9})
	if len(tb.Rows) != 6 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	// Bits grow with C.
	firstBits, err := strconv.Atoi(tb.Rows[0][3])
	if err != nil {
		t.Fatal(err)
	}
	lastBits, err := strconv.Atoi(tb.Rows[len(tb.Rows)-1][3])
	if err != nil {
		t.Fatal(err)
	}
	if lastBits <= firstBits {
		t.Fatalf("bits did not grow with C: %d → %d", firstBits, lastBits)
	}
}

func TestAppsExperimentsRun(t *testing.T) {
	// Smoke: all four application tables produce fully populated rows.
	for _, tb := range []Table{
		Moments(AppsConfig{Seed: 10, Quick: true}),
		HeavyHitters(AppsConfig{Seed: 11, Quick: true}),
		Reservoir(AppsConfig{Seed: 12}),
		Inversions(AppsConfig{Seed: 13}),
	} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			for i, cell := range row {
				if cell == "" {
					t.Fatalf("%s: empty cell %d in %v", tb.ID, i, row)
				}
			}
		}
	}
}

func TestHeavyHittersRecallHigh(t *testing.T) {
	tb := HeavyHitters(AppsConfig{Seed: 14, Quick: true})
	for _, row := range tb.Rows {
		recall, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if recall < 0.7 {
			t.Fatalf("recall %v in row %v", recall, row)
		}
	}
}

func TestReservoirPValuesSane(t *testing.T) {
	tb := Reservoir(AppsConfig{Seed: 15})
	for _, row := range tb.Rows {
		p, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.0001 {
			t.Fatalf("uniformity rejected: %v", row)
		}
	}
}

func TestRandBitsShape(t *testing.T) {
	tb := RandBits(20)
	if len(tb.Rows) != 8 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	// For every algorithm, skip-ahead must consume fewer words than
	// per-event; for Morris the gap must be at least 100×.
	for i := 0; i < len(tb.Rows); i += 2 {
		skip, err := strconv.ParseUint(tb.Rows[i][2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		per, err := strconv.ParseUint(tb.Rows[i+1][2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if skip >= per {
			t.Fatalf("%s: skip-ahead %d not below per-event %d", tb.Rows[i][0], skip, per)
		}
		if strings.HasPrefix(tb.Rows[i][0], "morris(") && per < 100*skip {
			t.Fatalf("morris skip-ahead gap only %d vs %d", skip, per)
		}
	}
}

func TestInterpShape(t *testing.T) {
	tb := Interp(SpaceConfig{Trials: 100, Seed: 21})
	for _, row := range tb.Rows {
		grid := parsePct(t, row[2])
		interp := parsePct(t, row[3])
		if interp >= grid {
			t.Fatalf("interpolation did not improve: %v", row)
		}
	}
}

func TestRegistryRunsEverythingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick registry sweep still takes a few seconds")
	}
	for _, name := range Names() {
		tables, err := Run(name, 42, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", name)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced empty table %s", name, tb.ID)
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", tb.ID)
			}
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", 1, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
