// Block-level dirty tracking: the bank records which 128-register blocks
// have changed since the last TakeDirty, so checkpoints and repair can ship
// deltas proportional to churn instead of keyspace (see docs/FORMAT.md,
// "Delta snapshots"). The block unit is pinned to snapcodec.BlockLen — the
// granule the snapshot codec packs independently — so a dirty block maps
// one-to-one onto a splice-able snapshot block.
//
// Keys interleave across shards (key k lives in shard k&mask), so a single
// block spans many shards and no per-shard bitmap would compose; instead the
// bitmap is one shared []atomic.Uint64, marked with a check-then-Or so the
// hot batch loop pays one atomic load per changed key and an atomic Or only
// on the 0→1 transition of a block. Marking is monotone and racy-by-design:
// it may overshoot (a block marked whose registers end up unchanged) but
// never undershoots, because every marker holds the shard lock of the
// register it changed, and TakeDirty callers serialize against appliers at
// a higher level (the store's write lock) when they need an exact cut.
package shardbank

import "math/bits"

// DirtyBlockLen is the register count of one dirty-tracking block. It must
// equal snapcodec.BlockLen (the codec's independently-packed block size);
// the engine package pins the two together in a test rather than importing
// snapcodec here.
const DirtyBlockLen = 128

const dirtyBlockShift = 7 // log2(DirtyBlockLen)

// dirtyWords returns the bitmap word count for an n-register bank.
func dirtyWords(n int) int {
	blocks := (n + DirtyBlockLen - 1) / DirtyBlockLen
	return (blocks + 63) / 64
}

// markDirty records that key k's block changed. Callers hold k's shard lock.
func (b *Bank) markDirty(k int) {
	blk := uint(k) >> dirtyBlockShift
	m := uint64(1) << (blk & 63)
	if w := &b.dirty[blk>>6]; w.Load()&m == 0 {
		w.Or(m)
	}
}

// markDirtyRange marks every block overlapping keys [lo, hi).
func (b *Bank) markDirtyRange(lo, hi int) {
	if lo >= hi {
		return
	}
	first := uint(lo) >> dirtyBlockShift
	last := uint(hi-1) >> dirtyBlockShift
	fw, lw := first>>6, last>>6
	for wi := fw; wi <= lw; wi++ {
		m := ^uint64(0)
		if wi == fw {
			m &= ^uint64(0) << (first & 63)
		}
		if wi == lw {
			m &= ^uint64(0) >> (63 - last&63)
		}
		if w := &b.dirty[wi]; w.Load()&m != m {
			w.Or(m)
		}
	}
}

// TakeDirty atomically drains the dirty bitmap and returns the indices of
// every block marked since the previous drain, strictly ascending. A block
// index bi covers keys [bi·DirtyBlockLen, (bi+1)·DirtyBlockLen) ∩ [0, Len).
// Draining and marking may race benignly (a mark landing mid-drain shows up
// either in this result or the next); callers needing an exact churn cut
// serialize TakeDirty against appliers themselves. Returns nil when clean.
func (b *Bank) TakeDirty() []uint32 {
	var out []uint32
	for wi := range b.dirty {
		w := b.dirty[wi].Swap(0)
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// MarkDirtyBlocks re-arms the given blocks — the undo of TakeDirty for a
// checkpoint that failed after draining, so the next attempt still covers
// them. Out-of-range indices are ignored.
func (b *Bank) MarkDirtyBlocks(blocks []uint32) {
	nb := uint((b.n + DirtyBlockLen - 1) / DirtyBlockLen)
	for _, blk := range blocks {
		if uint(blk) >= nb {
			continue
		}
		b.dirty[blk>>6].Or(uint64(1) << (blk & 63))
	}
}

// DirtyBlocks returns the number of currently-marked blocks without
// draining them (the observability gauge behind the checkpoint loop's
// delta-vs-full decision).
func (b *Bank) DirtyBlocks() int {
	total := 0
	for wi := range b.dirty {
		total += bits.OnesCount64(b.dirty[wi].Load())
	}
	return total
}
