package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// readyz fetches the node's /readyz and returns the status code.
func (tn *testNode) readyz() int {
	resp, err := http.Get(tn.self + "/v1/readyz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestReadinessGateOnJoin is the readiness-gate contract behind the
// Kubernetes deployment: a joining node must answer /readyz with 503 the
// whole time its partitions are still rebalancing onto it, and flip to 200
// exactly when it is reconciled at the current ring version with nothing
// pending — never before. It also scrapes /metrics on a live cluster node
// and lint-validates the exposition, so the cluster-layer series
// (counterd_cluster_*, counterd_rebalance_*) go through the same parser
// roundtrip as the store's.
func TestReadinessGateOnJoin(t *testing.T) {
	cc := defaultClusterConfig()
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()

	// Seed data so the joiner has real history to pull.
	src := stream.NewZipf(uint64(cc.n), 1.05, xrand.NewSeeded(7))
	for i := 0; i < 40; i++ {
		keys := make([]int, 250)
		for j := range keys {
			keys[j] = int(src.Next())
		}
		if err := n0.postInc(keys); err != nil {
			t.Fatalf("seed inc: %v", err)
		}
	}

	// The solo node reconciles its own ring quickly and reports ready.
	waitUntil(t, 5*time.Second, "first node ready", func() bool {
		return n0.readyz() == http.StatusOK
	})

	// A fresh joiner must NOT be ready before it has reconciled the joined
	// ring and installed every pulled partition.
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	if code := n1.readyz(); code == http.StatusOK {
		t.Fatalf("joining node reported ready before reconciling the ring")
	}

	// The gate must hold (503) at every poll until the rebalance status
	// itself says reconciled-with-nothing-pending, and then flip to 200.
	waitUntil(t, 15*time.Second, "joiner ready", func() bool {
		code := n1.readyz()
		var rs RebalanceStatus
		if err := getJSON(n1.self+"/v1/cluster/rebalance", &rs); err != nil {
			t.Fatalf("rebalance status: %v", err)
		}
		settled := rs.Reconciled && len(rs.Pending) == 0
		if code == http.StatusOK && !settled {
			t.Fatalf("readyz=200 while rebalance reports reconciled=%v pending=%v",
				rs.Reconciled, rs.Pending)
		}
		return code == http.StatusOK
	})

	// The joiner pulled real partitions; the rebalance counters must agree
	// on both surfaces (/cluster/rebalance JSON and /metrics exposition —
	// they read the same atomics).
	var rs RebalanceStatus
	if err := getJSON(n1.self+"/v1/cluster/rebalance", &rs); err != nil {
		t.Fatalf("rebalance status: %v", err)
	}
	if rs.Moved == 0 {
		t.Fatalf("joiner reports 0 partitions moved after becoming ready")
	}

	body, err := n1.fetch("/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	if err := metrics.LintExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("cluster node /metrics: invalid exposition: %v", err)
	}
	text := string(body)
	if want := fmt.Sprintf("counterd_rebalance_partitions_moved_total %d", rs.Moved); !strings.Contains(text, want) {
		t.Errorf("/metrics disagrees with /cluster/rebalance: missing %q", want)
	}
	for _, series := range []string{
		"counterd_cluster_antientropy_rounds_total",
		"counterd_cluster_repl_keys_sent_total",
		"counterd_cluster_outbox_pending_keys",
		`counterd_cluster_members{state="alive"} 2`,
		"counterd_rebalance_cutover_seconds_bucket",
		"counterd_store_pending_partitions 0",
		"counterd_antientropy_delta_syncs_total",
		"counterd_antientropy_bytes_saved_total",
		"counterd_rebalance_delta_handoffs_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics is missing %q", series)
		}
	}

	// The embedded ops dashboard serves from the cluster surface.
	resp, err := http.Get(n1.self + "/v1/cluster/dash")
	if err != nil {
		t.Fatalf("GET /v1/cluster/dash: %v", err)
	}
	dash, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster/dash: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard Content-Type %q", ct)
	}
	if !strings.Contains(string(dash), "counterd ops") {
		t.Fatalf("dashboard HTML missing title")
	}
}

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// getJSON decodes a GET response body into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}
