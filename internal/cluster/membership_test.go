package cluster

import (
	"testing"
	"time"
)

func testMembership(self string, onChange func()) *Membership {
	return NewMembership(self, MembershipConfig{
		SuspectAfter: 30 * time.Millisecond,
		DeadAfter:    90 * time.Millisecond,
		DropAfter:    300 * time.Millisecond,
	}, onChange)
}

func stateOf(t *testing.T, m *Membership, id string) Member {
	t.Helper()
	mem, ok := m.State(id)
	if !ok {
		t.Fatalf("member %s missing", id)
	}
	return mem
}

func TestMembershipMergeRules(t *testing.T) {
	m := testMembership("self", nil)
	m.MergeFrom([]Member{{ID: "a", Incarnation: 3, State: StateAlive}})
	if got := stateOf(t, m, "a"); got.State != StateAlive || got.Incarnation != 3 {
		t.Fatalf("a = %+v", got)
	}
	// Lower incarnation loses.
	m.MergeFrom([]Member{{ID: "a", Incarnation: 2, State: StateDead}})
	if got := stateOf(t, m, "a"); got.State != StateAlive {
		t.Fatalf("stale dead rumor accepted: %+v", got)
	}
	// Equal incarnation: worse state wins.
	m.MergeFrom([]Member{{ID: "a", Incarnation: 3, State: StateSuspect}})
	if got := stateOf(t, m, "a"); got.State != StateSuspect {
		t.Fatalf("equal-incarnation suspect ignored: %+v", got)
	}
	m.MergeFrom([]Member{{ID: "a", Incarnation: 3, State: StateAlive}})
	if got := stateOf(t, m, "a"); got.State != StateSuspect {
		t.Fatalf("equal-incarnation alive overrode suspect: %+v", got)
	}
	// Higher incarnation alive refutes.
	m.MergeFrom([]Member{{ID: "a", Incarnation: 4, State: StateAlive}})
	if got := stateOf(t, m, "a"); got.State != StateAlive || got.Incarnation != 4 {
		t.Fatalf("refutation rejected: %+v", got)
	}
}

func TestMembershipSelfDefense(t *testing.T) {
	m := testMembership("self", nil)
	selfBefore := stateOf(t, m, "self")
	m.MergeFrom([]Member{{ID: "self", Incarnation: selfBefore.Incarnation + 5, State: StateDead}})
	got := stateOf(t, m, "self")
	if got.State != StateAlive {
		t.Fatalf("node accepted its own death: %+v", got)
	}
	if got.Incarnation <= selfBefore.Incarnation+5 {
		t.Fatalf("refutation did not outbid the rumor: %+v", got)
	}
}

func TestMembershipTimeouts(t *testing.T) {
	changes := 0
	m := testMembership("self", func() { changes++ })
	m.AddSeed("peer")
	if got := stateOf(t, m, "peer"); got.State != StateAlive {
		t.Fatalf("seed not alive: %+v", got)
	}
	time.Sleep(40 * time.Millisecond)
	m.Tick()
	if got := stateOf(t, m, "peer"); got.State != StateSuspect {
		t.Fatalf("silent peer not suspect: %+v", got)
	}
	// Suspect members stay in the ring; dead ones leave it.
	if len(m.RingMembers()) != 2 {
		t.Fatalf("ring members = %v", m.RingMembers())
	}
	time.Sleep(60 * time.Millisecond)
	m.Tick()
	if got := stateOf(t, m, "peer"); got.State != StateDead {
		t.Fatalf("silent peer not dead: %+v", got)
	}
	if len(m.RingMembers()) != 1 {
		t.Fatalf("dead peer still in ring: %v", m.RingMembers())
	}
	// A direct contact revives it.
	m.Contact("peer", true)
	if got := stateOf(t, m, "peer"); got.State != StateAlive {
		t.Fatalf("contact did not revive: %+v", got)
	}
	// And total silence eventually drops it from the table.
	time.Sleep(350 * time.Millisecond)
	m.Tick() // -> dead
	m.Tick() // dead long enough -> dropped? DropAfter measured from lastSeen
	if _, ok := m.State("peer"); ok {
		t.Fatal("long-dead peer never dropped")
	}
	if changes == 0 {
		t.Fatal("onChange never fired")
	}
}

func TestMembershipSnapshotSorted(t *testing.T) {
	m := testMembership("c", nil)
	m.AddSeed("b")
	m.AddSeed("a")
	snap := m.Snapshot()
	if len(snap) != 3 || snap[0].ID != "a" || snap[1].ID != "b" || snap[2].ID != "c" {
		t.Fatalf("snapshot = %+v", snap)
	}
}
