package snapcodec

import (
	"bytes"
	"testing"

	"repro/internal/bank"
	"repro/internal/xrand"
)

func TestDeltaRoundTripAndApply(t *testing.T) {
	alg := bank.NewMorrisAlg(0.005, 14)
	for _, n := range []int{1, 127, 128, 129, 1000, 4096} {
		base := testSnapshot(t, zipfRegisters(n, 1e5, 1.05, 0.005, 14), alg, 8, false)
		full := testSnapshot(t, append([]uint64(nil), base.Registers...), alg, 8, false)
		// Mutate a scattered set of registers and record the touched blocks.
		touched := map[uint32]bool{}
		for _, k := range []int{0, n / 3, n / 2, n - 1} {
			full.Registers[k]++
			touched[uint32(k/BlockLen)] = true
		}
		blocks := make([]uint32, 0, len(touched))
		for b := 0; b < NumBlocks(n); b++ {
			if touched[uint32(b)] {
				blocks = append(blocks, uint32(b))
			}
		}
		d, err := MakeDelta(full, 7, blocks)
		if err != nil {
			t.Fatalf("n=%d: MakeDelta: %v", n, err)
		}
		data, err := Encode(d)
		if err != nil {
			t.Fatalf("n=%d: encode delta: %v", n, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("n=%d: decode delta: %v", n, err)
		}
		if !got.IsDelta() || got.DeltaBase != 7 || got.DeltaRegs != n {
			t.Fatalf("n=%d: decoded delta header %+v", n, got)
		}
		// Applying the decoded delta onto the base reproduces the mutated
		// full snapshot, byte-identically under re-encode.
		if err := ApplyDelta(base, got); err != nil {
			t.Fatalf("n=%d: ApplyDelta: %v", n, err)
		}
		wantBytes, err := Encode(full)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := Encode(base)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("n=%d: delta-reconstructed snapshot re-encodes differently", n)
		}
	}
}

func TestMaterializeDelta(t *testing.T) {
	alg := bank.NewCsurosAlg(16, 10)
	full := testSnapshot(t, zipfRegisters(1000, 1e5, 1.05, 0.005, 16), alg, 8, false)
	baseRegs := append([]uint64(nil), full.Registers...)
	for _, k := range []int{5, 200, 999} {
		full.Registers[k] += 3
	}
	d, err := MakeDelta(full, 0, []uint32{0, 1, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Materializing against a base with a different seed succeeds — the
	// result's header, including the seed, is the delta's.
	got, err := MaterializeDelta(d, baseRegs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != full.Seed || got.IsDelta() {
		t.Fatalf("materialized header: seed=%d delta=%v", got.Seed, got.IsDelta())
	}
	for i, v := range full.Registers {
		if got.Registers[i] != v {
			t.Fatalf("register %d = %d, want %d", i, got.Registers[i], v)
		}
	}
	// The base slice is copied, never aliased.
	got.Registers[0] = 1 << 60
	if baseRegs[0] == 1<<60 {
		t.Fatal("MaterializeDelta aliased the caller's base registers")
	}
	if _, err := MaterializeDelta(d, baseRegs[:999]); err == nil {
		t.Fatal("short base accepted")
	}
	if _, err := MaterializeDelta(full, baseRegs); err == nil {
		t.Fatal("non-delta snapshot accepted")
	}
}

func TestDeltaValidation(t *testing.T) {
	alg := bank.NewExactAlg(16)
	full := testSnapshot(t, make([]uint64, 1000), alg, 4, false)
	if _, err := MakeDelta(full, 0, []uint32{3, 3}); err == nil {
		t.Fatal("duplicate block list accepted")
	}
	if _, err := MakeDelta(full, 0, []uint32{2, 1}); err == nil {
		t.Fatal("descending block list accepted")
	}
	if _, err := MakeDelta(full, 0, []uint32{uint32(NumBlocks(1000))}); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	d, err := MakeDelta(full, 0, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MakeDelta(d, 0, nil); err == nil {
		t.Fatal("delta of a delta accepted")
	}
	other := testSnapshot(t, make([]uint64, 1000), alg, 4, false)
	other.Seed = 99
	if err := ApplyDelta(other, d); err == nil {
		t.Fatal("seed mismatch accepted by ApplyDelta")
	}
	short := testSnapshot(t, make([]uint64, 999), alg, 4, false)
	short.N = 1000 // identity matches; register section does not
	if err := ApplyDelta(short, d); err == nil {
		t.Fatal("short base accepted by ApplyDelta")
	}
	// Zero-block deltas are legal: payload/rng still ride them.
	empty, err := MakeDelta(full, 3, nil)
	if err != nil {
		t.Fatalf("zero-block delta: %v", err)
	}
	data, err := Encode(empty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDelta() || len(got.DeltaBlocks) != 0 || len(got.Registers) != 0 {
		t.Fatalf("zero-block delta decoded as %+v", got)
	}
}

// FuzzDeltaSnapshot drives the delta lifecycle from fuzzer-chosen shapes:
// build a full snapshot, mutate keys, cut a delta, encode, decode, apply —
// the reconstruction must be byte-identical to the mutated full snapshot,
// and no stage may panic. Raw decode of mutated delta bytes is covered by
// FuzzDecodeNeverPanics; this target owns the semantic round trip.
func FuzzDeltaSnapshot(f *testing.F) {
	f.Add(uint16(1000), uint64(1), uint8(3))
	f.Add(uint16(128), uint64(99), uint8(0))
	f.Add(uint16(1), uint64(0), uint8(255))
	f.Fuzz(func(t *testing.T, n16 uint16, seed uint64, mutations uint8) {
		n := int(n16)
		if n == 0 {
			return
		}
		alg := bank.NewExactAlg(16)
		rng := xrand.New(seed)
		regs := make([]uint64, n)
		for i := range regs {
			regs[i] = rng.Uint64() & 0xffff
		}
		base := testSnapshot(t, regs, alg, 4, false)
		full := testSnapshot(t, append([]uint64(nil), regs...), alg, 4, false)
		touched := map[uint32]bool{}
		for i := 0; i < int(mutations); i++ {
			k := int(rng.Uint64() % uint64(n))
			full.Registers[k] = (full.Registers[k] + 1) & 0xffff
			touched[uint32(k/BlockLen)] = true
		}
		blocks := make([]uint32, 0, len(touched))
		for b := 0; b < NumBlocks(n); b++ {
			if touched[uint32(b)] {
				blocks = append(blocks, uint32(b))
			}
		}
		d, err := MakeDelta(full, seed, blocks)
		if err != nil {
			t.Fatalf("MakeDelta: %v", err)
		}
		data, err := Encode(d)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		mat, err := MaterializeDelta(got, base.Registers)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		if err := ApplyDelta(base, got); err != nil {
			t.Fatalf("apply: %v", err)
		}
		for i := range full.Registers {
			if base.Registers[i] != full.Registers[i] || mat.Registers[i] != full.Registers[i] {
				t.Fatalf("register %d: apply=%d materialize=%d want %d",
					i, base.Registers[i], mat.Registers[i], full.Registers[i])
			}
		}
		wantBytes, err := Encode(full)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := Encode(base)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatal("delta reconstruction re-encodes differently from the full snapshot")
		}
	})
}
