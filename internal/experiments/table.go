// Package experiments contains the harnesses that regenerate every figure
// and quantitative claim of the paper (see DESIGN.md §3 for the experiment
// index E1–E9). Each harness returns a Table; the cmd/approxbench and
// cmd/fig1 tools render them as aligned text or CSV, and the repository's
// benchmarks wrap them so `go test -bench` reproduces the same rows.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: typed enough to render, simple enough
// to assert on in tests.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1/fig1").
	ID string
	// Title is a one-line description.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row, len == len(Columns).
	Rows [][]string
	// Notes are free-form lines printed under the table (expected shape,
	// caveats, parameter choices).
	Notes []string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as RFC-4180-ish CSV (cells here never contain commas
// or quotes, so no escaping is needed).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Cell formatting helpers shared by the harnesses.

func fmtF(v float64) string    { return fmt.Sprintf("%.4f", v) }
func fmtPct(v float64) string  { return fmt.Sprintf("%.3f%%", 100*v) }
func fmtE(v float64) string    { return fmt.Sprintf("%.3g", v) }
func fmtU(v uint64) string     { return fmt.Sprintf("%d", v) }
func fmtI(v int) string        { return fmt.Sprintf("%d", v) }
func fmtBits(v float64) string { return fmt.Sprintf("%.1f", v) }
