package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// zipfBatch builds a skewed batch of size events over [0, n) — the same
// shape the paper's workloads use, so encode/decode numbers reflect the
// coalescing the protocol was designed around.
func zipfBatch(size, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	keys := make([]int, size)
	for i := range keys {
		keys[i] = int(z.Uint64())
	}
	return keys
}

func BenchmarkBatchEncode(b *testing.B) {
	keys := zipfBatch(4096, 100_000, 1)
	var payload []byte
	var scratch []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, scratch = AppendBatch(payload[:0], keys, scratch)
	}
	b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(len(payload))/float64(len(keys)), "bytes/event")
}

func BenchmarkBatchDecode(b *testing.B) {
	keys := zipfBatch(4096, 100_000, 1)
	payload := EncodeBatch(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(payload, 1<<16, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// countSink is the no-op ingest target for transport benchmarks: both the
// HTTP and wire rows below pay the same (zero) application cost, so the
// difference between them is pure transport overhead.
type countSink struct{}

func (countSink) Batch(keys []int) (int, error) { return len(keys), nil }
func (countSink) Repl(keys []int) (int, error)  { return len(keys), nil }

// reportP99 sorts per-request latencies and reports the 99th percentile.
func reportP99(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds())/1e3, "p99-µs")
}

// BenchmarkServeWire measures batch ingest over the binary wire protocol on
// a loopback connection: one persistent conn, 1024-event Zipf batches,
// synchronous acks. Compare against BenchmarkServeHTTPJSON — same sink, same
// batches, same loopback — for the transport-only delta.
func BenchmarkServeWire(b *testing.B) {
	addr, stop := startWireServer(b, countSink{}, ServerConfig{})
	defer stop()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	keys := zipfBatch(1024, 100_000, 7)
	lat := make([]time.Duration, 0, b.N)
	b.SetBytes(int64(len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		applied, err := c.SendBatch(keys)
		lat = append(lat, time.Since(start))
		if err != nil {
			b.Fatal(err)
		}
		if applied != len(keys) {
			b.Fatalf("applied %d, want %d", applied, len(keys))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	reportP99(b, lat)
}

// BenchmarkServeHTTPJSON is the HTTP/1.1 + JSON twin of BenchmarkServeWire:
// the same 1024-event batches POSTed as {"keys":[...]} bodies over a
// keep-alive connection to the same no-op sink.
func BenchmarkServeHTTPJSON(b *testing.B) {
	sink := countSink{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keys []int `json:"keys"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applied, _ := sink.Batch(req.Keys)
		json.NewEncoder(w).Encode(map[string]int{"applied": applied})
	}))
	defer srv.Close()

	keys := zipfBatch(1024, 100_000, 7)
	body, err := json.Marshal(map[string][]int{"keys": keys})
	if err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	lat := make([]time.Duration, 0, b.N)
	b.SetBytes(int64(len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resp, err := client.Post(srv.URL+"/inc", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out struct {
			Applied int `json:"applied"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		lat = append(lat, time.Since(start))
		if out.Applied != len(keys) {
			b.Fatalf("applied %d, want %d", out.Applied, len(keys))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	reportP99(b, lat)
}
