package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// driveDriftLoad posts a Zipf(s) stream whose ranks are rotated by offset —
// the hot set of each phase lives at a different key neighborhood — and
// returns the exact per-key truth of the phase.
func driveDriftLoad(t *testing.T, nodes []*testNode, cc testClusterConfig, events, batch, offset int, s float64, seed uint64) []uint64 {
	t.Helper()
	truth := make([]uint64, cc.n)
	src := stream.NewZipf(uint64(cc.n), s, xrand.NewSeeded(seed))
	keys := make([]int, 0, batch)
	sent := 0
	for i := 0; sent < events; i++ {
		keys = keys[:0]
		for len(keys) < batch && sent+len(keys) < events {
			keys = append(keys, (int(src.Next())+offset)%cc.n)
		}
		var err error
		for try := 0; try < len(nodes); try++ {
			tn := nodes[(i+try)%len(nodes)]
			if err = tn.postInc(keys); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("no node accepted the batch: %v", err)
		}
		for _, k := range keys {
			truth[k]++
		}
		sent += len(keys)
	}
	return truth
}

// fetchWindowTopK asks one node for a window-scoped GET /topk.
func fetchWindowTopK(t *testing.T, tn *testNode, k int, window string) []engine.Entry {
	t.Helper()
	blob, err := tn.fetch(fmt.Sprintf("/topk?k=%d&window=%s", k, window))
	if err != nil {
		t.Fatalf("%s /topk window=%s: %v", tn.self, window, err)
	}
	var out struct {
		TopK []engine.Entry `json:"topk"`
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("%s /topk decode: %v", tn.self, err)
	}
	return out.TopK
}

// TestClusterWindowCrashRecovery is the sliding-window acceptance test: a
// 3-node RF=3 ring serving the window engine under a Zipf stream whose hot
// set drifts each bucket epoch, one node hard-killed mid-stream (its share
// of the load queuing as hinted handoff), the shared logical clock advanced
// while it is down, the node restarted — after which anti-entropy must
// converge all three replicas to byte-identical whole-engine snapshots and
// every node's trailing-window GET /topk must report the DRIFTED hot set,
// not the older (larger) phases that still dominate the full window.
func TestClusterWindowCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node loopback crash cluster")
	}
	clk := &atomic.Uint64{}
	cc := defaultClusterConfig()
	cc.engine = engine.KindWindow
	cc.buckets = 4
	cc.bucketDur = time.Minute // never consulted: the test clock drives epochs
	cc.clock = clk.Load
	cc.rf = 3 // every node replicates everything → whole snapshots converge
	cc.alg = bank.NewMorrisAlg(0.001, 14)

	dir2 := t.TempDir()
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	n2 := startNode(t, dir2, "", cc, []string{n0.self})
	nodes := []*testNode{n0, n1, n2}
	awaitMembers(t, nodes)

	const batch = 256
	offset := func(phase int) int { return phase * (cc.n / 4) }
	truth := make([][]uint64, 0, 4) // per-phase exact counts

	// Phase 0, epoch 0: the original hot set.
	truth = append(truth, driveDriftLoad(t, nodes, cc, 30_000, batch, offset(0), 1.2, 7))

	// Phase 1, epoch 1: drifted hot set; kill node 2 mid-phase so the rest
	// of the phase queues as hinted handoff for it.
	clk.Store(1)
	truth = append(truth, driveDriftLoad(t, nodes, cc, 10_000, batch, offset(1), 1.2, 8))
	n2.kill()
	truth = append(truth, driveDriftLoad(t, []*testNode{n0, n1}, cc, 20_000, batch, offset(1), 1.2, 9))

	// The clock moves on while node 2 is down.
	clk.Store(2)
	truth = append(truth, driveDriftLoad(t, []*testNode{n0, n1}, cc, 20_000, batch, offset(2), 1.2, 10))

	// Restart node 2 from its directory: WAL replay (ticks included),
	// gossip rejoin, hint drain, anti-entropy repair. Hinted batches carry
	// their origin bucket epoch, so the delayed drain heals the epoch-1/2
	// buckets they belong to rather than smearing into the drain-time
	// bucket (TestClusterWindowHintDrainHealsOriginBucket pins that
	// contract). Converging before the clock moves on still keeps the
	// epoch-3 bucket free of repair traffic entirely.
	n2 = startNode(t, dir2, n2.addr, cc, []string{n0.self})
	defer n2.shutdown()
	nodes = []*testNode{n0, n1, n2}
	awaitMembers(t, nodes)
	awaitWholeBankConvergence(t, nodes)

	// Phase 3, epoch 3: the final drift, served by the healed ring.
	clk.Store(3)
	lastTruth := driveDriftLoad(t, nodes, cc, 20_000, batch, offset(3), 1.2, 11)
	truth = append(truth, lastTruth)

	awaitWholeBankConvergence(t, nodes)

	// Recovery stats: the restarted node must have replayed tick records,
	// and its logical clock must sit at the test clock.
	blob, err := n2.fetch("/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Engine      string `json:"engine"`
		WindowEpoch uint64 `json:"windowEpoch"`
	}
	if err := json.Unmarshal(blob, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Engine != engine.KindWindow || hz.WindowEpoch != 3 {
		t.Fatalf("restarted node healthz: %+v", hz)
	}

	// True trailing-bucket top keys: phase 3 only.
	trueRecent := trueTopKeys(lastTruth, 10)

	// Every node serves the SAME windowed report (they are byte-identical),
	// and the trailing bucket ranks the drifted hot set: the true top-5 of
	// phase 3 must all be present in the top-10.
	var firstRecent, firstFull []engine.Entry
	for i, tn := range nodes {
		recent := fetchWindowTopK(t, tn, 10, "1")
		full := fetchWindowTopK(t, tn, 10, "4")
		if i == 0 {
			firstRecent, firstFull = recent, full
			t.Logf("trailing-bucket top-10: %+v", recent)
			t.Logf("true phase-3 top-10: %v", trueRecent)
		} else {
			for j := range recent {
				if recent[j] != firstRecent[j] {
					t.Fatalf("node %d trailing top-k diverges from node 0 at rank %d: %+v vs %+v",
						i, j, recent[j], firstRecent[j])
				}
			}
			for j := range full {
				if full[j] != firstFull[j] {
					t.Fatalf("node %d full-window top-k diverges at rank %d", i, j)
				}
			}
		}
		reported := make(map[int]bool, len(recent))
		for _, e := range recent {
			reported[e.Key] = true
		}
		for rank, k := range trueRecent[:5] {
			if !reported[k] {
				t.Fatalf("node %d: phase-3 true rank-%d key %d (count %d) missing from trailing top-10",
					i, rank, k, lastTruth[k])
			}
		}
	}

	// The drift is visible: the phase-0 heavy hitter dominates epoch 0's
	// bucket but must NOT appear in the trailing bucket (its neighborhood
	// got no phase-3 traffic: offsets are disjoint for the hot ranks).
	old := trueTopKeys(truth[0], 1)[0]
	for _, e := range firstRecent {
		if e.Key == old {
			t.Fatalf("expired hot key %d still in the trailing-bucket top-10: %+v", old, firstRecent)
		}
	}

	// Estimates in the trailing bucket track the phase-3 truth for the
	// hottest keys: the heal completed in an earlier bucket, so nothing of
	// phases 0–2 should leak into this one beyond Morris register noise and
	// the bounded replica max-join sliver.
	for _, e := range firstRecent[:3] {
		tr := float64(lastTruth[e.Key])
		if tr == 0 {
			continue
		}
		if d := (e.Estimate - tr) / tr; d < -0.2 || d > 0.3 {
			t.Fatalf("key %d: trailing estimate %.0f vs phase-3 truth %.0f (%+.1f%%)",
				e.Key, e.Estimate, tr, 100*d)
		}
	}

	// Byte-identical windowed snapshots across a second kill -9 restart of
	// the healed node: rotation is replayed from the log, not re-derived.
	pre, err := n2.fetch("/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	n2.kill()
	n2 = startNode(t, dir2, n2.addr, cc, []string{n0.self})
	nodes = []*testNode{n0, n1, n2}
	defer n2.shutdown()
	post, err := n2.fetch("/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, post) {
		t.Fatal("windowed /snapshot not byte-identical across kill -9 restart")
	}
	awaitMembers(t, nodes)
}
