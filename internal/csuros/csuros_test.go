package csuros

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitpack"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	rng := xrand.NewSeeded(1)
	bad := []struct{ w, d int }{{1, 1}, {63, 4}, {8, 0}, {8, 8}, {8, 9}}
	for _, tc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", tc.w, tc.d)
				}
			}()
			New(tc.w, tc.d, rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng accepted")
			}
		}()
		New(8, 4, nil)
	}()
}

func TestExactWhileExponentZero(t *testing.T) {
	rng := xrand.NewSeeded(2)
	c := New(17, 10, rng)
	for i := uint64(1); i < 1024; i++ { // stays below 2^10
		c.Increment()
		if c.EstimateUint64() != i {
			t.Fatalf("not exact at %d: %d", i, c.EstimateUint64())
		}
	}
}

func TestEstimateFormula(t *testing.T) {
	rng := xrand.NewSeeded(3)
	c := New(17, 8, rng)
	// c = t·2^d + u with t=3, u=5: estimate = (256+5)·8 − 256 = 1832.
	c.c = 3<<8 | 5
	if got := c.Estimate(); got != 1832 {
		t.Fatalf("Estimate = %v, want 1832", got)
	}
	if c.exponent() != 3 || c.mantissa() != 5 {
		t.Fatalf("exponent/mantissa = %d/%d", c.exponent(), c.mantissa())
	}
}

func TestUnbiasedness(t *testing.T) {
	// [Csu10, Prop. 1]: E[n̂] = n for all n.
	rng := xrand.NewSeeded(4)
	const N, trials = 100000, 20000
	var sum stats.Summary
	for i := 0; i < trials; i++ {
		c := New(17, 10, rng)
		c.IncrementBy(N)
		sum.Add(c.Estimate())
	}
	tol := 6 * sum.StdErr()
	if math.Abs(sum.Mean()-N) > tol {
		t.Fatalf("mean estimate %v, want %v ± %v", sum.Mean(), float64(N), tol)
	}
}

func TestIncrementAndIncrementByAgree(t *testing.T) {
	rngA := xrand.NewSeeded(5)
	rngB := xrand.NewSeeded(6)
	const N, trials = 20000, 1000
	estA := make([]float64, trials)
	estB := make([]float64, trials)
	for i := 0; i < trials; i++ {
		a := New(17, 9, rngA)
		for j := 0; j < N; j++ {
			a.Increment()
		}
		estA[i] = a.Estimate()
		b := New(17, 9, rngB)
		b.IncrementBy(N)
		estB[i] = b.Estimate()
	}
	ks := stats.KolmogorovSmirnov(estA, estB)
	if crit := stats.KSCritical(0.001, trials, trials); ks > crit {
		t.Fatalf("per-event vs skip-ahead KS %v > %v", ks, crit)
	}
}

func TestRelativeErrorScale(t *testing.T) {
	// Relative std ≈ 2^{-(d+1)/2}·O(1); with d = 14 at N = 750k it must be
	// well below 1.5% and the counter must not saturate.
	rng := xrand.NewSeeded(7)
	const N, trials = 750000, 1200
	var errs stats.Summary
	for i := 0; i < trials; i++ {
		c := New(17, 14, rng)
		c.IncrementBy(N)
		if c.Saturated() {
			t.Fatal("17/14 counter saturated at 750k")
		}
		errs.Add(stats.SignedRelativeError(c.Estimate(), N))
	}
	if errs.StdDev() > 0.015 {
		t.Fatalf("relative error std %v, want < 1.5%%", errs.StdDev())
	}
	if math.Abs(errs.Mean()) > 4*errs.StdErr()+1e-4 {
		t.Fatalf("relative error biased: mean %v", errs.Mean())
	}
}

func TestSaturation(t *testing.T) {
	rng := xrand.NewSeeded(8)
	c := New(4, 2, rng) // tiny: cap = 15
	c.IncrementBy(1 << 30)
	if !c.Saturated() {
		t.Fatal("tiny counter did not saturate")
	}
	if c.Raw() != 15 {
		t.Fatalf("raw = %d, want cap 15", c.Raw())
	}
	est := c.Estimate()
	c.IncrementBy(1000)
	if c.Estimate() != est {
		t.Fatal("saturated counter kept moving")
	}
}

func TestMantissaBitsFor(t *testing.T) {
	// 17 bits, maxN just under 10^6 (the Figure 1 setting): the chooser
	// must leave enough exponent range while maximizing the mantissa.
	d := MantissaBitsFor(17, 999999)
	if d < 10 || d > 15 {
		t.Fatalf("MantissaBitsFor(17, 999999) = %d, implausible", d)
	}
	// The resulting counter must be able to represent 2× maxN.
	rng := xrand.NewSeeded(9)
	c := NewForBudget(17, 999999, rng)
	c.IncrementBy(999999)
	if c.Saturated() {
		t.Fatal("budgeted counter saturated at maxN")
	}
	// Monotone: more budget → at least as large a mantissa.
	if MantissaBitsFor(20, 999999) < d {
		t.Fatal("larger budget chose smaller mantissa")
	}
}

func TestStateBitsFixed(t *testing.T) {
	rng := xrand.NewSeeded(10)
	c := New(17, 12, rng)
	if c.StateBits() != 17 || c.MaxStateBits() != 17 {
		t.Fatalf("StateBits = %d/%d", c.StateBits(), c.MaxStateBits())
	}
	c.IncrementBy(1 << 20)
	if c.StateBits() != 17 {
		t.Fatalf("StateBits moved to %d", c.StateBits())
	}
	if c.MantissaBits() != 12 {
		t.Fatalf("MantissaBits = %d", c.MantissaBits())
	}
	if c.Name() != "csuros" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := xrand.NewSeeded(11)
	c := New(17, 11, rng)
	c.IncrementBy(500000)
	w := bitpack.NewWriter()
	c.EncodeState(w)
	if w.Len() != 17 {
		t.Fatalf("encoded %d bits, want 17", w.Len())
	}
	d := New(17, 11, rng)
	if err := d.DecodeState(bitpack.NewReader(w.Bytes(), w.Len())); err != nil {
		t.Fatal(err)
	}
	if d.Raw() != c.Raw() || d.Estimate() != c.Estimate() {
		t.Fatal("round trip mismatch")
	}
}

func TestReset(t *testing.T) {
	rng := xrand.NewSeeded(12)
	c := New(17, 11, rng)
	c.IncrementBy(100000)
	c.Reset()
	if c.Raw() != 0 || c.Estimate() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMergePreservesDistribution(t *testing.T) {
	// The [CY20]-style merge extension: merged ~ directly incremented.
	rng := xrand.NewSeeded(15)
	const n1, n2, trials = 3000, 9000, 3000
	merged := make([]float64, trials)
	direct := make([]float64, trials)
	for i := 0; i < trials; i++ {
		c1 := New(17, 8, rng)
		c1.IncrementBy(n1)
		c2 := New(17, 8, rng)
		c2.IncrementBy(n2)
		if err := c1.Merge(c2); err != nil {
			t.Fatal(err)
		}
		merged[i] = c1.Estimate()
		d := New(17, 8, rng)
		d.IncrementBy(n1 + n2)
		direct[i] = d.Estimate()
	}
	ks := stats.KolmogorovSmirnov(merged, direct)
	if crit := stats.KSCritical(0.001, trials, trials); ks > crit {
		t.Fatalf("csuros merge distribution drift: KS %v > %v", ks, crit)
	}
}

func TestMergeExactRegion(t *testing.T) {
	// Two counters still in the exact (t = 0) region merge to an exact sum.
	rng := xrand.NewSeeded(16)
	c1 := New(17, 10, rng)
	c2 := New(17, 10, rng)
	c1.IncrementBy(100)
	c2.IncrementBy(200)
	if err := c1.Merge(c2); err != nil {
		t.Fatal(err)
	}
	if c1.EstimateUint64() != 300 {
		t.Fatalf("exact-region merge: %d, want 300", c1.EstimateUint64())
	}
}

func TestMergeSwapsWhenDonorAhead(t *testing.T) {
	rng := xrand.NewSeeded(17)
	small := New(17, 8, rng)
	small.IncrementBy(500)
	big := New(17, 8, rng)
	big.IncrementBy(80000)
	if err := small.Merge(big); err != nil {
		t.Fatal(err)
	}
	if re := stats.RelativeError(small.Estimate(), 80500); re > 0.5 {
		t.Fatalf("merge with advanced donor: estimate %v", small.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	rng := xrand.NewSeeded(18)
	a := New(17, 8, rng)
	b := New(17, 9, rng)
	if err := a.Merge(b); err == nil {
		t.Fatal("mantissa mismatch accepted")
	}
	c := New(16, 8, rng)
	if err := a.Merge(c); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

// Property: the raw register never exceeds the cap and the estimate is
// monotone in the register value.
func TestQuickRegisterBounded(t *testing.T) {
	rng := xrand.NewSeeded(13)
	f := func(steps []uint16) bool {
		c := New(10, 6, rng)
		prevEst := -1.0
		for _, s := range steps {
			c.IncrementBy(uint64(s))
			if c.Raw() > c.max {
				return false
			}
			est := c.Estimate()
			if est < prevEst {
				return false
			}
			prevEst = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: estimate is exact for any n below the mantissa capacity.
func TestQuickExactBelowMantissa(t *testing.T) {
	rng := xrand.NewSeeded(14)
	f := func(n uint16) bool {
		c := New(20, 16, rng)
		nn := uint64(n) // < 2^16 = mantissa capacity
		c.IncrementBy(nn)
		return c.EstimateUint64() == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
