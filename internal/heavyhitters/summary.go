// Summary is the serving-grade flavor of SpaceSaving: the [BDW19]
// construction (SpaceSaving slots holding fixed-width approximate registers
// instead of exact counts) rebuilt for the durable/replicated stack in
// internal/engine. The map-of-counters SpaceSaving above is fine for
// experiments; a served summary additionally needs
//
//   - determinism: WAL replay reconstructs a crashed summary bit-for-bit,
//     so every choice the structure makes — which slot to evict, which
//     order merge draws consume randomness in — is a pure function of the
//     (state, operation order, rng stream). Eviction ties break on the
//     smallest item id; merges fold the incoming slots in ascending item
//     order.
//   - registers, not counter objects: a slot is (item, register) with the
//     register stepped by a bank.Algorithm, so the same Morris/Csűrös/exact
//     vocabulary (and the paper's ~log log m bit bound per slot) that backs
//     the counter bank backs the heavy-hitters summary.
//   - mergeability, in both of the repository's join flavors:
//     MergeDisjoint is the SpaceSaving union for summaries that absorbed
//     DISJOINT streams — slot sets union, common items fold via the
//     paper's Remark 2.4 register merge, then the result re-prunes to
//     capacity; MergeMax is the idempotent same-stream replica join —
//     common items take the register-wise maximum (the "max takeover"),
//     absent slots transfer, then re-prune. Like the bank's MergeMaxRange,
//     one pull-push MergeMax exchange converges two replicas to identical
//     slot tables (see TestSummaryMergeMaxConverges).
//   - a canonical serialized order: Export lists slots sorted by item id,
//     so two summaries with equal state encode byte-identically.
package heavyhitters

import (
	"fmt"
	"sort"

	"repro/internal/bank"
	"repro/internal/xrand"
)

// Summary maintains the ≤ cap most frequent items with register slots.
// Not safe for concurrent use; the engine layer stripes and locks.
type Summary struct {
	alg    bank.Algorithm
	cap    int
	maxReg uint64
	idx    map[uint64]int // item → slot position in items/regs
	items  []uint64
	regs   []uint64
	n      uint64 // events absorbed (diagnostics; merges sum/max it)
}

// NewSummary returns an empty summary of capacity k over alg registers.
func NewSummary(alg bank.Algorithm, k int) *Summary {
	if k < 1 {
		panic(fmt.Sprintf("heavyhitters: capacity %d < 1", k))
	}
	return &Summary{
		alg:    alg,
		cap:    k,
		maxReg: ^uint64(0) >> uint(64-alg.Width()),
		idx:    make(map[uint64]int, k),
	}
}

// Cap returns the slot capacity k.
func (s *Summary) Cap() int { return s.cap }

// Len returns the number of occupied slots.
func (s *Summary) Len() int { return len(s.items) }

// StreamLen returns the number of events absorbed (including, after a
// disjoint merge, the donor's).
func (s *Summary) StreamLen() uint64 { return s.n }

// Algorithm returns the slot register algorithm.
func (s *Summary) Algorithm() bank.Algorithm { return s.alg }

// Process absorbs one occurrence of item, drawing any step randomness from
// rng. Tracked items step their register; a new item takes a free slot at
// register Step(0), or evicts the minimum slot (smallest register, ties to
// the smallest item id) and inherits its register — the SpaceSaving
// overestimate-preserving takeover — before stepping.
func (s *Summary) Process(item uint64, rng *xrand.Rand) {
	s.n++
	if i, ok := s.idx[item]; ok {
		s.regs[i] = s.alg.Step(s.regs[i], rng)
		return
	}
	if len(s.items) < s.cap {
		s.idx[item] = len(s.items)
		s.items = append(s.items, item)
		s.regs = append(s.regs, s.alg.Step(0, rng))
		return
	}
	v := s.victim()
	delete(s.idx, s.items[v])
	s.items[v] = item
	s.idx[item] = v
	s.regs[v] = s.alg.Step(s.regs[v], rng)
}

// victim returns the slot position holding the smallest register, ties
// broken toward the smallest item id. cap is small (the summary's whole
// point), so a linear scan beats any heap bookkeeping on the hot path.
func (s *Summary) victim() int {
	v := 0
	for i := 1; i < len(s.items); i++ {
		if s.regs[i] < s.regs[v] || (s.regs[i] == s.regs[v] && s.items[i] < s.items[v]) {
			v = i
		}
	}
	return v
}

// Estimate returns the estimated occurrence count for item — an
// overestimate (up to register noise) for tracked items, 0 for untracked.
func (s *Summary) Estimate(item uint64) float64 {
	if i, ok := s.idx[item]; ok {
		return s.alg.Estimate(s.regs[i])
	}
	return 0
}

// Top returns up to k tracked items sorted by decreasing register (ties to
// the smaller item id). k <= 0 means all tracked items.
func (s *Summary) Top(k int) []Entry {
	order := s.order()
	if k <= 0 || k > len(order) {
		k = len(order)
	}
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		out[i] = Entry{Item: s.items[order[i]], Count: s.alg.Estimate(s.regs[order[i]])}
	}
	return out
}

// order returns slot positions sorted by (register desc, item asc) — the
// canonical ranking shared by Top and prune.
func (s *Summary) order() []int {
	order := make([]int, len(s.items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if s.regs[ia] != s.regs[ib] {
			return s.regs[ia] > s.regs[ib]
		}
		return s.items[ia] < s.items[ib]
	})
	return order
}

// Export returns the slot table sorted by ascending item id — the canonical
// serialized order, so equal summaries export identically. The slices are
// fresh copies.
func (s *Summary) Export() (items []uint64, regs []uint64) {
	order := make([]int, len(s.items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.items[order[a]] < s.items[order[b]] })
	items = make([]uint64, len(order))
	regs = make([]uint64, len(order))
	for i, p := range order {
		items[i] = s.items[p]
		regs[i] = s.regs[p]
	}
	return items, regs
}

// checkSlots validates an imported slot table: sorted strictly ascending by
// item, registers within the algorithm width.
func (s *Summary) checkSlots(items, regs []uint64) error {
	if len(items) != len(regs) {
		return fmt.Errorf("heavyhitters: %d items for %d registers", len(items), len(regs))
	}
	for i := range items {
		if i > 0 && items[i] <= items[i-1] {
			return fmt.Errorf("heavyhitters: slot items not strictly ascending at %d", i)
		}
		if regs[i] > s.maxReg {
			return fmt.Errorf("heavyhitters: slot register %d exceeds %d-bit width", regs[i], s.alg.Width())
		}
	}
	return nil
}

// Restore replaces the summary's slots with an Export-format table (and
// stream length), validating shape first; on error the summary is
// unmodified. len(items) may not exceed the capacity.
func (s *Summary) Restore(items, regs []uint64, n uint64) error {
	if err := s.checkSlots(items, regs); err != nil {
		return err
	}
	if len(items) > s.cap {
		return fmt.Errorf("heavyhitters: %d slots exceed capacity %d", len(items), s.cap)
	}
	s.items = append(s.items[:0], items...)
	s.regs = append(s.regs[:0], regs...)
	s.idx = make(map[uint64]int, s.cap)
	for i, it := range s.items {
		s.idx[it] = i
	}
	s.n = n
	return nil
}

// MergeDisjoint folds an Export-format slot table from a summary that
// absorbed a DISJOINT stream: slot sets union, items present on both sides
// merge their registers via the paper's Remark 2.4 (drawing from rng in
// ascending item order — a deterministic order, so a WAL-logged merge
// replays bit-identically), and the union re-prunes to capacity by the
// canonical (register desc, item asc) ranking. Counts of pruned slots are
// forgotten, exactly as in the classical SpaceSaving union: the summary
// stays a capped overestimate sketch, not a lossless union. Requires a
// bank.MergeAlgorithm; on validation error the summary is unmodified.
func (s *Summary) MergeDisjoint(items, regs []uint64, n uint64, rng *xrand.Rand) error {
	ma, ok := s.alg.(bank.MergeAlgorithm)
	if !ok {
		return fmt.Errorf("heavyhitters: algorithm %q does not support merge", s.alg.Name())
	}
	if err := s.checkSlots(items, regs); err != nil {
		return err
	}
	for i, it := range items {
		if j, ok := s.idx[it]; ok {
			s.regs[j] = ma.MergeRegs(s.regs[j], regs[i], rng)
		} else {
			s.idx[it] = len(s.items)
			s.items = append(s.items, it)
			s.regs = append(s.regs, regs[i])
		}
	}
	s.n += n
	s.prune()
	return nil
}

// MergeMax folds an Export-format slot table from a replica of the SAME
// logical stream: items present on both sides take the register-wise
// maximum, absent slots transfer, and the union re-prunes to capacity.
// No randomness is drawn; the join is idempotent, commutative up to the
// canonical pruning order, and a pull-push exchange leaves both replicas
// with identical slot tables. On validation error the summary is
// unmodified.
func (s *Summary) MergeMax(items, regs []uint64, n uint64) error {
	if err := s.checkSlots(items, regs); err != nil {
		return err
	}
	for i, it := range items {
		if j, ok := s.idx[it]; ok {
			if regs[i] > s.regs[j] {
				s.regs[j] = regs[i]
			}
		} else {
			s.idx[it] = len(s.items)
			s.items = append(s.items, it)
			s.regs = append(s.regs, regs[i])
		}
	}
	if n > s.n {
		s.n = n
	}
	s.prune()
	return nil
}

// prune drops the lowest-ranked slots until the summary fits its capacity.
func (s *Summary) prune() {
	if len(s.items) <= s.cap {
		return
	}
	order := s.order()[:s.cap]
	sort.Ints(order) // keep survivors in their relative slot order
	items := make([]uint64, len(order))
	regs := make([]uint64, len(order))
	idx := make(map[uint64]int, s.cap)
	for i, p := range order {
		items[i] = s.items[p]
		regs[i] = s.regs[p]
		idx[items[i]] = i
	}
	s.items, s.regs, s.idx = items, regs, idx
}
