package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine(
		"BenchmarkClusterIngest-8   \t     100\t   4567649 ns/op\t    224185 events/s\t  0.158 bytes/register",
		"repro/internal/cluster")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if b.Name != "BenchmarkClusterIngest" || b.Pkg != "repro/internal/cluster" || b.Iterations != 100 {
		t.Fatalf("parsed %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 4567649, "events/s": 224185, "bytes/register": 0.158,
	} {
		if b.Metrics[unit] != want {
			t.Fatalf("metric %s = %v, want %v", unit, b.Metrics[unit], want)
		}
	}
	if _, ok := parseBenchLine("Benchmark garbage", ""); ok {
		t.Fatal("garbage accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoMetrics-4  100", ""); ok {
		t.Fatal("metricless line accepted")
	}
	// Sub-benchmark names keep their slash path, only the -P suffix drops.
	b, ok = parseBenchLine("BenchmarkAppendBatch/fsync=interval-16  50  200 ns/op", "")
	if !ok || b.Name != "BenchmarkAppendBatch/fsync=interval" {
		t.Fatalf("sub-bench parsed as %+v (ok=%v)", b, ok)
	}
}
