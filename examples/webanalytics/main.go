// Webanalytics: the paper's motivating scenario (Section 1) — an analytics
// system maintaining one counter per page — served the way a real system
// would: a sharded bank of packed Morris registers (internal/shardbank)
// absorbing a concurrent Zipf-distributed view stream from several ingest
// goroutines, with batched increments amortizing each shard lock across
// thousands of events. With 100k pages, cutting each counter from a 64-bit
// word to a ~14-bit packed register is a 4–5× memory reduction at a few
// percent counting error — and the sharded bank sustains several times the
// single-mutex throughput while doing it.
//
// Run with: go run ./examples/webanalytics
package main

import (
	"fmt"
	"sync"

	"repro/internal/bank"
	"repro/internal/shardbank"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	const (
		pages     = 100_000
		views     = 5_000_000
		ingesters = 4
		batch     = 2048
	)

	// A sharded bank of packed Morris registers: 14 bits per page, 64 lock
	// stripes, covering counts far beyond anything an exact 14-bit register
	// could hold.
	approx := shardbank.New(pages, bank.NewMorrisAlg(0.005, 14), 64, 7)
	// The exact baseline: a sharded bank of 32-bit registers (a
	// map[string]uint64 would be worse still).
	exactB := shardbank.New(pages, bank.NewExactAlg(32), 64, 7)

	// Page popularity is Zipf-distributed, as real page-view workloads are.
	// Each ingester samples its own stream slice and counts it into both
	// banks through the batched path.
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := stream.NewZipf(pages, 1.05, xrand.NewSeeded(uint64(100+g)))
			buf := make([]int, batch)
			for done := 0; done < views/ingesters; {
				keys := buf
				if rest := views/ingesters - done; rest < len(keys) {
					keys = keys[:rest]
				}
				for i := range keys {
					keys[i] = int(src.Next())
				}
				approx.IncrementBatch(keys)
				exactB.IncrementBatch(keys)
				done += len(keys)
			}
		}(g)
	}
	wg.Wait()

	// The exact bank *is* the truth (32-bit registers never saturate here),
	// so accuracy falls out of comparing the two read-mostly views.
	est := approx.EstimateAll()
	truth := exactB.EstimateAll()

	fmt.Println("page      true views   approx views   error")
	shown := 0
	for p := 0; p < pages && shown < 10; p++ {
		if truth[p] < 1000 {
			continue
		}
		fmt.Printf("page-%-4d %10.0f   %12.0f   %+.2f%%\n",
			p, truth[p], est[p], 100*(est[p]-truth[p])/truth[p])
		shown++
	}

	var sumAbsErr, count float64
	for p := 0; p < pages; p++ {
		if truth[p] == 0 {
			continue
		}
		d := est[p] - truth[p]
		if d < 0 {
			d = -d
		}
		sumAbsErr += d / truth[p]
		count++
	}
	fmt.Printf("\nmean |relative error| across %0.f touched pages: %.2f%%\n",
		count, 100*sumAbsErr/count)
	fmt.Printf("approximate bank: %8d bytes (%d bits/counter, %d shards)\n",
		approx.SizeBytes(), approx.BitsPerCounter(), approx.Shards())
	fmt.Printf("exact bank:       %8d bytes (%d bits/counter)\n",
		exactB.SizeBytes(), exactB.BitsPerCounter())
	fmt.Printf("memory saved:     %.1f×\n",
		float64(exactB.SizeBytes())/float64(approx.SizeBytes()))
}
