package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Sink is what a wire server feeds: the same two ingest verbs the HTTP
// surface exposes. BATCH frames call Batch (the coordinated write path —
// ring fan-out in cluster mode, a plain store apply single-node); REPL
// frames call Repl (replica-apply only, never re-fanned-out — the verb
// behind /cluster/repl). Both return the number of events applied.
type Sink interface {
	Batch(keys []int) (applied int, err error)
	Repl(keys []int) (applied int, err error)
}

// HandoffSink is the optional third verb a sink may implement: serving
// FETCH frames (the rebalance partition pull, see internal/cluster). A sink
// without it answers FETCH with ERROR 400, exactly like a pre-handoff build
// — the rebalancer then falls back to the HTTP handoff endpoint. Fetch
// returns the source's role (RoleOwner for a live owner's copy, RoleFrozen
// for a surrendered frozen copy) and the snapcodec partition snapshot; an
// error is mapped through ServerConfig.ErrorCode like every sink error.
type HandoffSink interface {
	Fetch(partition int, ringVer uint64) (role byte, blob []byte, err error)
}

// DeltaSink is the optional pair of verbs behind delta anti-entropy: BHASH
// frames call BlockHashes (the partition's write version plus one FNV-1a
// hash per snapcodec block of its register section), BDELTA frames call
// BlockDelta (a snapcodec delta snapshot carrying only the requested
// blocks). A sink without it answers both with ERROR 400, and the syncing
// peer falls back to the HTTP block-delta endpoints (or to a full-partition
// exchange against a pre-delta build).
type DeltaSink interface {
	BlockHashes(partition int) (version uint64, hashes []uint64, err error)
	BlockDelta(partition int, blocks []uint32) (blob []byte, err error)
}

// EpochSink is the optional epoch-tagged spelling of Repl: REPLAT frames
// carry the origin node's bucket epoch so a windowed receiver heals the
// hinted keys into the bucket they were counted in (or drops them once that
// bucket rotated out) instead of smearing them into the current one. A sink
// without it answers ERROR 400 and the drainer falls back to the HTTP repl
// path, which carries the same epoch in JSON.
type EpochSink interface {
	ReplAt(keys []int, epoch uint64) (applied int, err error)
}

// ServerConfig tunes a wire Server.
type ServerConfig struct {
	// MaxBatch caps the events accepted in one BATCH/REPL frame (0 = 1<<16,
	// the store default). Must match the sink's own cap or oversized frames
	// get a 400 from the sink instead of the decoder — same outcome, worse
	// message.
	MaxBatch int
	// MaxKey bounds accepted keys to [0, MaxKey) at decode time (0 = no
	// wire-level bound; the sink still validates).
	MaxKey int
	// ErrorCode maps a sink error to the HTTP-style status code carried in
	// ERROR frames (default: 500 for everything — wire callers should pass
	// the same classifier the HTTP layer uses).
	ErrorCode func(error) int
	// IdleTimeout closes a connection with no inbound frames for this long
	// (0 = no timeout). Persistent clients ping within it.
	IdleTimeout time.Duration
	// Logf receives per-connection fault lines (default: silent).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives wire_* instrumentation: frames
	// in/out by type, decode errors, and open/total connection counts.
	Metrics *metrics.Registry
}

// Server accepts persistent wire connections and pumps their frames into a
// Sink. One goroutine per connection; frames on a connection are processed
// strictly in order, so acks need no sequence numbers.
type Server struct {
	cfg  ServerConfig
	sink Sink

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  chan struct{}

	// Instrumentation; all nil (no-op) unless ServerConfig.Metrics was set.
	mFramesIn   *metrics.CounterVec
	mFramesOut  *metrics.CounterVec
	mDecodeErrs *metrics.Counter
	mConns      *metrics.Gauge
	mConnsTotal *metrics.Counter
}

// NewServer builds a wire server over sink.
func NewServer(sink Sink, cfg ServerConfig) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 16
	}
	if cfg.ErrorCode == nil {
		cfg.ErrorCode = func(error) int { return 500 }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:   cfg,
		sink:  sink,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if m := cfg.Metrics; m != nil {
		s.mFramesIn = m.CounterVec("counterd_wire_frames_in_total",
			"Wire frames received, by type.", "type")
		s.mFramesOut = m.CounterVec("counterd_wire_frames_out_total",
			"Wire frames sent, by type.", "type")
		s.mDecodeErrs = m.Counter("counterd_wire_decode_errors_total",
			"Inbound frames rejected at decode (framing or batch payload).")
		s.mConns = m.Gauge("counterd_wire_connections",
			"Open wire connections.")
		s.mConnsTotal = m.Counter("counterd_wire_connections_total",
			"Wire connections accepted since start.")
	}
	return s
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting and tears down every open connection. Safe to call
// more than once.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	s.mConnsTotal.Inc()
	s.mConns.Add(1)
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.mConns.Add(-1)
	}()

	fail := func(stage string, err error) {
		// EOF / closed-connection ends are the normal client hangup; only
		// protocol faults are worth a log line.
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return
		}
		s.cfg.Logf("wire: %s: %s: %v", conn.RemoteAddr(), stage, err)
	}

	touch := func() {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
	}

	br := bufio.NewReaderSize(conn, 64<<10)

	// Handshake: HELLO in, HELLO out. A bad hello gets an ERROR frame (best
	// effort — the peer may not even speak the framing) and the connection
	// dies.
	touch()
	typ, payload, scratch, err := ReadFrame(br, nil)
	if err != nil {
		fail("handshake read", err)
		return
	}
	s.mFramesIn.With(FrameName(typ)).Inc()
	if typ != FrameHello {
		s.mDecodeErrs.Inc()
		s.writeFrame(conn, FrameError, errorPayload(400, "expected HELLO"))
		fail("handshake", fmt.Errorf("first frame type %d", typ))
		return
	}
	if _, err := parseHello(payload); err != nil {
		s.mDecodeErrs.Inc()
		s.writeFrame(conn, FrameError, errorPayload(400, err.Error()))
		fail("handshake", err)
		return
	}
	if err := s.writeFrame(conn, FrameHello, helloPayload()); err != nil {
		fail("handshake write", err)
		return
	}

	out := make([]byte, 0, 4096)
	for {
		touch()
		typ, payload, scratch, err = ReadFrame(br, scratch)
		if err != nil {
			// Framing faults poison the stream position; there is no safe
			// way to answer on a stream we can no longer parse.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!errors.Is(err, os.ErrDeadlineExceeded) {
				s.mDecodeErrs.Inc()
			}
			fail("read", err)
			return
		}
		s.mFramesIn.With(FrameName(typ)).Inc()
		out = out[:0]
		var outType byte
		switch typ {
		case FramePing:
			outType = FramePong
			out = AppendFrame(out, FramePong, nil)
		case FrameBatch, FrameRepl:
			keys, err := DecodeBatch(payload, s.cfg.MaxBatch, s.cfg.MaxKey)
			var applied int
			if err == nil {
				applied, err = s.dispatch(typ, keys)
			}
			switch {
			case errors.Is(err, ErrBadBatch):
				s.mDecodeErrs.Inc()
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, err.Error()))
			case err != nil:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(s.cfg.ErrorCode(err), err.Error()))
			default:
				outType = FrameAck
				out = AppendFrame(out, FrameAck, ackPayload(applied))
			}
		case FrameFetch:
			hs, ok := s.sink.(HandoffSink)
			if !ok {
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, "handoff not supported"))
				break
			}
			partition, ringVer, err := parseFetch(payload)
			var role byte
			var blob []byte
			if err == nil {
				role, blob, err = hs.Fetch(partition, ringVer)
			}
			switch {
			case err != nil:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(s.cfg.ErrorCode(err), err.Error()))
			case len(blob)+1 > MaxFramePayload:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(500, "partition snapshot exceeds frame cap"))
			default:
				outType = FrameSnap
				out = AppendFrame(out, FrameSnap, snapPayload(role, blob))
			}
		case FrameReplAt:
			es, ok := s.sink.(EpochSink)
			if !ok {
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, "epoch-tagged repl not supported"))
				break
			}
			epoch, n := binary.Uvarint(payload)
			var keys []int
			var applied int
			var err error
			if n <= 0 {
				err = fmt.Errorf("%w: bad epoch prefix", ErrBadBatch)
			} else {
				keys, err = DecodeBatch(payload[n:], s.cfg.MaxBatch, s.cfg.MaxKey)
			}
			if err == nil {
				applied, err = es.ReplAt(keys, epoch)
			}
			switch {
			case errors.Is(err, ErrBadBatch):
				s.mDecodeErrs.Inc()
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, err.Error()))
			case err != nil:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(s.cfg.ErrorCode(err), err.Error()))
			default:
				outType = FrameAck
				out = AppendFrame(out, FrameAck, ackPayload(applied))
			}
		case FrameBHash:
			ds, ok := s.sink.(DeltaSink)
			if !ok {
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, "block hashes not supported"))
				break
			}
			partition, err := parseBHash(payload)
			var ver uint64
			var hashes []uint64
			if err == nil {
				ver, hashes, err = ds.BlockHashes(partition)
			}
			switch {
			case err != nil:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(s.cfg.ErrorCode(err), err.Error()))
			default:
				outType = FrameBHashes
				out = AppendFrame(out, FrameBHashes, bhashesPayload(ver, hashes))
			}
		case FrameBDelta:
			ds, ok := s.sink.(DeltaSink)
			if !ok {
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(400, "block deltas not supported"))
				break
			}
			partition, blocks, err := parseBDelta(payload)
			var blob []byte
			if err == nil {
				blob, err = ds.BlockDelta(partition, blocks)
			}
			switch {
			case err != nil:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(s.cfg.ErrorCode(err), err.Error()))
			case len(blob) > MaxFramePayload:
				outType = FrameError
				out = AppendFrame(out, FrameError, errorPayload(500, "block delta exceeds frame cap"))
			default:
				outType = FrameDelta
				out = AppendFrame(out, FrameDelta, blob)
			}
		default:
			s.mDecodeErrs.Inc()
			outType = FrameError
			out = AppendFrame(out, FrameError, errorPayload(400, fmt.Sprintf("unknown frame type %d", typ)))
		}
		if _, err := conn.Write(out); err != nil {
			fail("write", err)
			return
		}
		s.mFramesOut.With(FrameName(outType)).Inc()
	}
}

// dispatch routes a decoded batch to the sink verb for typ.
func (s *Server) dispatch(typ byte, keys []int) (int, error) {
	if typ == FrameBatch {
		return s.sink.Batch(keys)
	}
	return s.sink.Repl(keys)
}

// writeFrame writes one frame and counts it when instrumented.
func (s *Server) writeFrame(conn net.Conn, typ byte, payload []byte) error {
	err := WriteFrame(conn, typ, payload)
	if err == nil {
		s.mFramesOut.With(FrameName(typ)).Inc()
	}
	return err
}
