package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csuros"
	"repro/internal/morris"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// RandBits measures randomness consumption — a resource the paper treats as
// free but real systems meter. Each algorithm counts N = 10⁶ events twice:
// once per-event (one coin per event) and once via skip-ahead (one
// geometric draw per state transition); the table reports 64-bit words
// drawn. The skip-ahead columns also quantify why IncrementBy is fast: the
// counters draw O(final state) randomness, not O(N).
func RandBits(seed uint64) Table {
	tb := Table{
		ID:    "E-ext/randbits",
		Title: "Randomness consumption per 10⁶ events: per-event vs skip-ahead",
		Columns: []string{
			"algorithm", "mode", "rng words", "words/event",
		},
	}
	const n = 1_000_000
	type build func(rng *xrand.Rand) interface{ IncrementBy(uint64) }
	algos := []struct {
		name  string
		build build
	}{
		{"nelson-yu(0.1,2^-20)", func(r *xrand.Rand) interface{ IncrementBy(uint64) } {
			return core.MustNew(core.Config{Eps: 0.1, DeltaLog: 20}, r)
		}},
		{"morris(0.01)", func(r *xrand.Rand) interface{ IncrementBy(uint64) } {
			return morris.New(0.01, r)
		}},
		{"morris+(0.1,2^-20)", func(r *xrand.Rand) interface{ IncrementBy(uint64) } {
			return morris.NewPlusForError(0.1, math2pow(-20), r)
		}},
		{"csuros(17 bits)", func(r *xrand.Rand) interface{ IncrementBy(uint64) } {
			return csuros.NewForBudget(17, n, r)
		}},
	}
	for _, al := range algos {
		// Skip-ahead.
		cs := xrand.NewCounting(xrand.New(seed))
		c := al.build(xrand.NewRand(cs))
		c.IncrementBy(n)
		tb.AddRow(al.name, "skip-ahead", fmtU(cs.Words()),
			fmt.Sprintf("%.5f", float64(cs.Words())/n))

		// Per-event.
		cs2 := xrand.NewCounting(xrand.New(seed))
		c2 := al.build(xrand.NewRand(cs2))
		for i := 0; i < n; i++ {
			c2.IncrementBy(1)
		}
		_ = c2
		tb.AddRow(al.name, "per-event", fmtU(cs2.Words()),
			fmt.Sprintf("%.5f", float64(cs2.Words())/n))
	}
	tb.Notes = append(tb.Notes,
		"expected: skip-ahead draws O(final state) words — thousands of times fewer than per-event",
		"per-event csuros/ny draw <1 word/event on average because dyadic coins inspect one word and most increments are rejected cheaply",
	)
	return tb
}

func math2pow(e int) float64 {
	v := 1.0
	for ; e < 0; e++ {
		v /= 2
	}
	return v
}

// Interp is the estimator-extension ablation: the paper's Query() answers
// with the epoch threshold T (quantizing to the (1+ε)^k grid); the
// EstimateInterpolated extension reads the same (X, Y, t) state but
// interpolates within the epoch. Same state, same failure probability
// regime, visibly lower typical error.
func Interp(cfg SpaceConfig) Table {
	cfg = cfg.withDefaults()
	rng := xrand.NewSeeded(cfg.Seed)
	tb := Table{
		ID:    "E-ext/interp",
		Title: "Extension: grid Query() vs interpolated estimator on identical state",
		Columns: []string{
			"eps", "delta", "grid mean|err|", "interp mean|err|", "grid p95", "interp p95",
		},
	}
	type pt struct {
		eps      float64
		deltaLog int
	}
	for _, p := range []pt{{0.3, 8}, {0.2, 8}, {0.1, 8}} {
		gridErrs := make([]float64, 0, cfg.Trials)
		interpErrs := make([]float64, 0, cfg.Trials)
		for tr := 0; tr < cfg.Trials; tr++ {
			n := rng.Range(50000, 200000)
			c := core.MustNew(core.Config{Eps: p.eps, DeltaLog: p.deltaLog}, rng)
			c.IncrementBy(n)
			gridErrs = append(gridErrs, stats.RelativeError(c.Estimate(), float64(n)))
			interpErrs = append(interpErrs, stats.RelativeError(c.EstimateInterpolated(), float64(n)))
		}
		g := stats.NewECDF(gridErrs)
		in := stats.NewECDF(interpErrs)
		var gm, im stats.Summary
		for _, e := range gridErrs {
			gm.Add(e)
		}
		for _, e := range interpErrs {
			im.Add(e)
		}
		tb.AddRow(
			fmtF(p.eps), fmt.Sprintf("2^-%d", p.deltaLog),
			fmtPct(gm.Mean()), fmtPct(im.Mean()),
			fmtPct(g.Quantile(0.95)), fmtPct(in.Quantile(0.95)),
		)
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("trials=%d per row, N ~ U[50000, 200000]", cfg.Trials),
		"expected: interpolated errors well below the grid answer's at every ε — a free accuracy win from the same state",
	)
	return tb
}
