// Moments: frequency-moment estimation over a heavy stream with
// approximate counters as the counting subroutine — the application the
// paper cites from [GS09]. The AMS sketch's per-copy occurrence counter is
// swapped from exact to Morris, shrinking sketch state while preserving the
// estimate; the win grows with the per-item counts, which is exactly the
// "long data streams" regime [GS09] targets.
//
// Run with: go run ./examples/moments
package main

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/freqmoments"
	"repro/internal/morris"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.NewSeeded(5)

	// A long stream over few distinct items: per-copy occurrence counts
	// reach the tens of thousands, where log N vs log log N bites.
	src := stream.NewZipf(10, 1.1, rng)
	items := stream.Materialize(src, 300_000)
	truth := freqmoments.ExactMoment(stream.ExactCounts(items), 2)
	fmt.Printf("exact F₂ (hash map over full stream): %.4g\n\n", truth)

	run := func(label string, factory freqmoments.NewCounterFunc) {
		ams := freqmoments.NewAMS(2, 600, factory, rng)
		for _, it := range items {
			ams.Process(it)
		}
		est := ams.Estimate()
		fmt.Printf("%-22s F₂ ≈ %.4g  (error %+.1f%%, counter state %d bits)\n",
			label, est, 100*(est-truth)/truth, ams.CounterStateBits())
	}

	run("AMS + exact counters", freqmoments.ExactCounters())
	run("AMS + Morris counters", func() counter.Counter {
		return morris.New(0.05, rng)
	})

	fmt.Println("\nBoth sketches land within AMS sampling error; the Morris version")
	fmt.Println("pays O(log log r) instead of O(log r) bits per occurrence counter.")
}
