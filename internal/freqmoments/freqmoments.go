// Package freqmoments implements frequency-moment estimation over
// insertion-only streams with approximate counters as the counting
// subroutine — the application of approximate counting the paper cites from
// [AMS99] and [GS09] (and, for p ∈ (0,1], [JW19]).
//
// The estimator is the classical AMS sketch for F_k = Σᵢ fᵢ^k: sample a
// uniformly random stream position (by reservoir-style replacement, so the
// stream length need not be known in advance), count the occurrences r of
// the sampled item from that position onward, and output m·(r^k − (r−1)^k),
// averaged over many independent copies. [GS09]'s observation, reproduced
// here, is that the per-copy occurrence counter r can itself be an
// *approximate* counter (Morris), shrinking the per-copy state from
// O(log m) to O(log log m) bits while preserving the estimate's shape.
package freqmoments

import (
	"fmt"
	"math"

	"repro/internal/counter"
	"repro/internal/exact"
	"repro/internal/xrand"
)

// ExactMoment computes F_k = Σᵢ fᵢ^k from an exact frequency table.
// F_0 is the number of distinct items.
func ExactMoment(counts map[uint64]uint64, k int) float64 {
	if k < 0 {
		panic("freqmoments: negative moment")
	}
	var f float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		f += math.Pow(float64(c), float64(k))
	}
	return f
}

// NewCounterFunc constructs the per-copy occurrence counter. Plug in
// exact.New for the classical AMS sketch or a Morris+/NY factory for the
// [GS09]-style small-state variant.
type NewCounterFunc func() counter.Counter

// ExactCounters returns a factory for exact occurrence counters.
func ExactCounters() NewCounterFunc {
	return func() counter.Counter { return exact.New() }
}

// amsCopy is one independent AMS estimator: a sampled item and the counter
// of its occurrences since it was sampled.
type amsCopy struct {
	item uint64
	r    counter.Counter
	live bool
}

// AMS is an s-copy AMS estimator of F_k with pluggable occurrence counters.
type AMS struct {
	k      int
	m      uint64 // stream length so far
	copies []amsCopy
	newC   NewCounterFunc
	rng    *xrand.Rand
}

// NewAMS returns an AMS estimator for F_k using s independent copies.
func NewAMS(k, s int, newC NewCounterFunc, rng *xrand.Rand) *AMS {
	if k < 2 {
		panic(fmt.Sprintf("freqmoments: AMS needs k ≥ 2, got %d", k))
	}
	if s < 1 {
		panic("freqmoments: AMS needs s ≥ 1 copies")
	}
	if rng == nil {
		panic("freqmoments: nil rng")
	}
	return &AMS{k: k, copies: make([]amsCopy, s), newC: newC, rng: rng}
}

// Process feeds one stream item to every copy.
func (a *AMS) Process(item uint64) {
	a.m++
	for i := range a.copies {
		c := &a.copies[i]
		// Reservoir-style position sampling: replace the sample with the
		// current position with probability 1/m, making the sampled
		// position uniform over the stream so far.
		if !c.live || a.rng.Uint64n(a.m) == 0 {
			c.item = item
			c.r = a.newC()
			c.r.Increment()
			c.live = true
			continue
		}
		if c.item == item {
			c.r.Increment()
		}
	}
}

// Estimate returns the averaged AMS estimate of F_k. It returns 0 before
// any item is processed.
func (a *AMS) Estimate() float64 {
	if a.m == 0 {
		return 0
	}
	var sum float64
	for i := range a.copies {
		c := &a.copies[i]
		if !c.live {
			continue
		}
		r := c.r.Estimate()
		if r < 1 {
			r = 1
		}
		kf := float64(a.k)
		sum += float64(a.m) * (math.Pow(r, kf) - math.Pow(r-1, kf))
	}
	return sum / float64(len(a.copies))
}

// StreamLength returns the number of items processed.
func (a *AMS) StreamLength() uint64 { return a.m }

// Copies returns the number of independent estimator copies.
func (a *AMS) Copies() int { return len(a.copies) }

// CounterStateBits returns the total current state bits across all
// occurrence counters — the quantity approximate counters shrink.
func (a *AMS) CounterStateBits() int {
	total := 0
	for i := range a.copies {
		if a.copies[i].live {
			total += a.copies[i].r.StateBits()
		}
	}
	return total
}
