package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/bitpack"
	"repro/internal/counter"
)

func TestCounterExactness(t *testing.T) {
	c := New()
	for i := 1; i <= 1000; i++ {
		c.Increment()
		if c.EstimateUint64() != uint64(i) {
			t.Fatalf("after %d increments: %d", i, c.EstimateUint64())
		}
	}
	if c.Estimate() != 1000 {
		t.Fatalf("Estimate = %v", c.Estimate())
	}
}

func TestCounterIncrementByMatchesLoop(t *testing.T) {
	a, b := New(), New()
	a.IncrementBy(12345)
	for i := 0; i < 12345; i++ {
		b.Increment()
	}
	if a.EstimateUint64() != b.EstimateUint64() {
		t.Fatalf("IncrementBy %d vs loop %d", a.EstimateUint64(), b.EstimateUint64())
	}
}

func TestCounterStateBits(t *testing.T) {
	c := New()
	if c.StateBits() != 0 {
		t.Fatalf("zero counter StateBits = %d", c.StateBits())
	}
	c.IncrementBy(1)
	if c.StateBits() != 1 {
		t.Fatalf("StateBits(1) = %d", c.StateBits())
	}
	c.IncrementBy(6) // N = 7
	if c.StateBits() != 3 {
		t.Fatalf("StateBits(7) = %d", c.StateBits())
	}
	c.IncrementBy(1) // N = 8
	if c.StateBits() != 4 {
		t.Fatalf("StateBits(8) = %d", c.StateBits())
	}
	if c.MaxStateBits() != 4 {
		t.Fatalf("MaxStateBits = %d", c.MaxStateBits())
	}
}

func TestCounterSaturatingAddAtMax(t *testing.T) {
	c := New()
	c.IncrementBy(^uint64(0))
	c.Increment()
	if c.EstimateUint64() != ^uint64(0) {
		t.Fatal("exact counter overflowed instead of saturating")
	}
}

func TestCounterMerge(t *testing.T) {
	a, b := New(), New()
	a.IncrementBy(100)
	b.IncrementBy(23)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.EstimateUint64() != 123 {
		t.Fatalf("merged = %d", a.EstimateUint64())
	}
	if err := a.Merge(NewSaturatingAsCounter()); err == nil {
		t.Fatal("merge with foreign type did not error")
	}
}

// NewSaturatingAsCounter adapts a Saturating to counter.Counter for the
// type-mismatch test above.
func NewSaturatingAsCounter() counter.Counter { return &satAdapter{NewSaturating(8)} }

type satAdapter struct{ *Saturating }

func (s *satAdapter) Estimate() float64      { return float64(s.Value()) }
func (s *satAdapter) EstimateUint64() uint64 { return s.Value() }
func (s *satAdapter) StateBits() int         { return s.Width() }
func (s *satAdapter) MaxStateBits() int      { return s.Width() }
func (s *satAdapter) Name() string           { return "saturating" }

func TestCounterSerializationRoundTrip(t *testing.T) {
	c := New()
	c.IncrementBy(987654321)
	w := bitpack.NewWriter()
	c.EncodeState(w)
	d := New()
	if err := d.DecodeState(bitpack.NewReader(w.Bytes(), w.Len())); err != nil {
		t.Fatal(err)
	}
	if d.EstimateUint64() != 987654321 {
		t.Fatalf("decoded %d", d.EstimateUint64())
	}
}

func TestSaturatingBasics(t *testing.T) {
	s := NewSaturating(3) // cap 7
	for i := 1; i <= 7; i++ {
		s.Increment()
		if s.Value() != uint64(i) {
			t.Fatalf("Value after %d = %d", i, s.Value())
		}
	}
	if !s.Saturated() {
		t.Fatal("not saturated at cap")
	}
	s.Increment()
	if s.Value() != 7 {
		t.Fatalf("saturated counter moved to %d", s.Value())
	}
	if s.Cap() != 7 || s.Width() != 3 {
		t.Fatalf("Cap/Width = %d/%d", s.Cap(), s.Width())
	}
}

func TestSaturatingIncrementByJumpsOverCap(t *testing.T) {
	s := NewSaturating(4)
	s.IncrementBy(1000)
	if s.Value() != 15 || !s.Saturated() {
		t.Fatalf("Value = %d", s.Value())
	}
	s2 := NewSaturating(10)
	s2.IncrementBy(^uint64(0))
	if s2.Value() != 1023 {
		t.Fatalf("Value = %d", s2.Value())
	}
}

func TestSaturatingForDistinguishesLimitPlusOne(t *testing.T) {
	// NewSaturatingFor(limit) must represent every value 0..limit exactly
	// and still have a distinct "overflowed" value, i.e. cap >= limit+1.
	for _, limit := range []uint64{1, 2, 7, 8, 100, 1000} {
		s := NewSaturatingFor(limit)
		if s.Cap() < limit+1 {
			t.Fatalf("limit %d: cap %d cannot mark overflow", limit, s.Cap())
		}
		s.IncrementBy(limit)
		if s.Value() != limit || s.Saturated() {
			t.Fatalf("limit %d: value %d saturated=%v", limit, s.Value(), s.Saturated())
		}
	}
}

func TestSaturatingWidthPanics(t *testing.T) {
	for _, w := range []int{0, -1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewSaturating(w)
		}()
	}
}

func TestSaturatingSerializationRoundTrip(t *testing.T) {
	s := NewSaturating(13)
	s.IncrementBy(777)
	w := bitpack.NewWriter()
	s.EncodeState(w)
	if w.Len() != 13 {
		t.Fatalf("encoded %d bits, want 13", w.Len())
	}
	d := NewSaturating(13)
	if err := d.DecodeState(bitpack.NewReader(w.Bytes(), w.Len())); err != nil {
		t.Fatal(err)
	}
	if d.Value() != 777 {
		t.Fatalf("decoded %d", d.Value())
	}
}

// Property: exact counter always reports the true count, any interleaving.
func TestQuickCounterAlwaysExact(t *testing.T) {
	f := func(steps []uint16) bool {
		c := New()
		var truth uint64
		for _, s := range steps {
			c.IncrementBy(uint64(s))
			truth += uint64(s)
		}
		return c.EstimateUint64() == truth && c.StateBits() == counter.BitLen(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: saturating counter equals min(truth, cap).
func TestQuickSaturatingIsMin(t *testing.T) {
	f := func(widthSeed uint8, steps []uint16) bool {
		width := int(widthSeed)%20 + 1
		s := NewSaturating(width)
		var truth uint64
		for _, st := range steps {
			s.IncrementBy(uint64(st))
			truth += uint64(st)
		}
		want := truth
		if want > s.Cap() {
			want = s.Cap()
		}
		return s.Value() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
