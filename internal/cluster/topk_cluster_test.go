package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"repro/internal/bank"
	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// driveZipfLoad posts batches of a Zipf(s) stream round-robin across nodes
// (failing over like driveLoad) and returns the exact per-key truth.
func driveZipfLoad(t *testing.T, nodes []*testNode, cc testClusterConfig, events, batch int, s float64, seed uint64) []uint64 {
	t.Helper()
	truth := make([]uint64, cc.n)
	src := stream.NewZipf(uint64(cc.n), s, xrand.NewSeeded(seed))
	keys := make([]int, 0, batch)
	sent := 0
	for i := 0; sent < events; i++ {
		keys = keys[:0]
		for len(keys) < batch && sent+len(keys) < events {
			keys = append(keys, int(src.Next()))
		}
		var err error
		for try := 0; try < len(nodes); try++ {
			tn := nodes[(i+try)%len(nodes)]
			if err = tn.postInc(keys); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("no node accepted the batch: %v", err)
		}
		for _, k := range keys {
			truth[k]++
		}
		sent += len(keys)
	}
	return truth
}

// trueTopKeys returns the true top-l keys of the acked load.
func trueTopKeys(truth []uint64, l int) []int {
	keys := make([]int, len(truth))
	for k := range keys {
		keys[k] = k
	}
	sort.Slice(keys, func(i, j int) bool {
		if truth[keys[i]] != truth[keys[j]] {
			return truth[keys[i]] > truth[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys[:l]
}

// fetchTopK asks one node for its cluster-partition-spanning GET /topk.
func fetchTopK(t *testing.T, tn *testNode, k int) []engine.Entry {
	t.Helper()
	blob, err := tn.fetch(fmt.Sprintf("/topk?k=%d", k))
	if err != nil {
		t.Fatalf("%s /topk: %v", tn.self, err)
	}
	var out struct {
		TopK []engine.Entry `json:"topk"`
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("%s /topk decode: %v", tn.self, err)
	}
	return out.TopK
}

// TestClusterTopKCrashRecovery is the heavy-hitters acceptance test: a
// 3-node RF=3 ring serving the SpaceSaving-over-Morris engine under a
// Zipf(1.1) stream, one node hard-killed mid-stream, load continuing
// against the survivors (hinted handoff), the node restarted — after which
// anti-entropy must converge all three replicas byte-identically and every
// node's GET /topk must report the stream's true heavy hitters.
func TestClusterTopKCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node loopback crash cluster")
	}
	cc := defaultClusterConfig()
	cc.engine = engine.KindTopK
	cc.topkCap = 64
	cc.rf = 3 // every node replicates everything → whole snapshots converge
	cc.alg = bank.NewMorrisAlg(0.001, 14)

	dir2 := t.TempDir()
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	n2 := startNode(t, dir2, "", cc, []string{n0.self})
	nodes := []*testNode{n0, n1, n2}
	awaitMembers(t, nodes)

	if blob, err := n0.fetch("/healthz"); err != nil || !json.Valid(blob) {
		t.Fatalf("healthz: %v", err)
	}

	const batch = 256
	truth := make([]uint64, cc.n)
	add := func(tr []uint64) {
		for k, c := range tr {
			truth[k] += c
		}
	}

	// Phase 1: Zipf(1.1) load across all three nodes.
	add(driveZipfLoad(t, nodes, cc, 40_000, batch, 1.1, 7))

	// Kill node 2 mid-life; survivors keep absorbing the stream, queueing
	// node 2's share as hinted handoff.
	n2.kill()
	add(driveZipfLoad(t, []*testNode{n0, n1}, cc, 30_000, batch, 1.1, 8))

	// Restart node 2 from its directory: WAL replay + gossip rejoin +
	// hint drain + anti-entropy repair.
	n2 = startNode(t, dir2, n2.addr, cc, []string{n0.self})
	defer n2.shutdown()
	nodes = []*testNode{n0, n1, n2}
	awaitMembers(t, nodes)
	add(driveZipfLoad(t, nodes, cc, 10_000, batch, 1.1, 9))

	awaitWholeBankConvergence(t, nodes)

	// Every node reports the same top-10, and it recovers the true heavy
	// hitters: the true top-5 must all be present, and overall top-10
	// recall ≥ 0.9 (Morris noise may flip the boundary ranks of a
	// Zipf(1.1) tail, whose neighbors differ by ~10%).
	trueTop := trueTopKeys(truth, 10)
	var first []engine.Entry
	for i, tn := range nodes {
		got := fetchTopK(t, tn, 10)
		if len(got) != 10 {
			t.Fatalf("node %d: top-10 returned %d entries", i, len(got))
		}
		if i == 0 {
			first = got
			t.Logf("reported top-10: %+v", got)
			t.Logf("true top-10 keys: %v (count[0]=%d count[9]=%d)",
				trueTop, truth[trueTop[0]], truth[trueTop[9]])
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("node %d top-k diverges from node 0 at rank %d: %+v vs %+v",
						i, j, got[j], first[j])
				}
			}
		}
		reported := make(map[int]bool, len(got))
		for _, e := range got {
			reported[e.Key] = true
		}
		hits := 0
		for rank, k := range trueTop {
			if reported[k] {
				hits++
			} else if rank < 5 {
				t.Fatalf("node %d: true rank-%d key %d (count %d) missing from top-10",
					i, rank, k, truth[k])
			}
		}
		if hits < 9 {
			t.Fatalf("node %d: top-10 recall %d/10", i, hits)
		}
	}

	// The reported estimates track the acked truth for the dominant keys.
	for _, e := range first[:3] {
		tr := float64(truth[e.Key])
		if d := (e.Estimate - tr) / tr; d < -0.15 || d > 0.15 {
			t.Fatalf("key %d: estimate %.0f vs truth %.0f (%+.1f%%)", e.Key, e.Estimate, tr, 100*d)
		}
	}
}
