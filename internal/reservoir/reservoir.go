// Package reservoir implements reservoir sampling over streams of unknown
// length, including the approximate variant the paper cites from [GS09]:
// when thousands of reservoirs run side by side, tracking each stream's
// length n with an approximate counter instead of an exact one cuts the
// per-reservoir bookkeeping from O(log n) to O(log log n) bits, while the
// sample stays near-uniform because the inclusion probability k/n̂ is only
// ever off by the counter's (1±ε).
package reservoir

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/exact"
	"repro/internal/xrand"
)

// Sampler maintains a uniform (or near-uniform) sample of k items from a
// stream, with the stream-length counter pluggable.
type Sampler struct {
	k     int
	items []uint64
	n     counter.Counter // stream length: exact or approximate
	rng   *xrand.Rand
}

// New returns a Sampler of capacity k whose length counter is lengthCounter
// (pass exact.New() for the classical algorithm R).
func New(k int, lengthCounter counter.Counter, rng *xrand.Rand) *Sampler {
	if k < 1 {
		panic(fmt.Sprintf("reservoir: capacity %d < 1", k))
	}
	if lengthCounter == nil {
		panic("reservoir: nil length counter")
	}
	if rng == nil {
		panic("reservoir: nil rng")
	}
	return &Sampler{k: k, items: make([]uint64, 0, k), n: lengthCounter, rng: rng}
}

// NewExact returns the classical algorithm-R sampler.
func NewExact(k int, rng *xrand.Rand) *Sampler {
	return New(k, exact.New(), rng)
}

// Offer feeds one stream item.
func (s *Sampler) Offer(item uint64) {
	s.n.Increment()
	if len(s.items) < s.k {
		s.items = append(s.items, item)
		return
	}
	// Include with probability k/n̂; on inclusion, replace a uniform slot.
	nHat := s.n.Estimate()
	if nHat < float64(s.k) {
		nHat = float64(s.k)
	}
	if s.rng.Bernoulli(float64(s.k) / nHat) {
		s.items[s.rng.Intn(s.k)] = item
	}
}

// Sample returns the current sample (shared slice; do not mutate).
func (s *Sampler) Sample() []uint64 { return s.items }

// SeenEstimate returns the length counter's estimate of the stream length.
func (s *Sampler) SeenEstimate() float64 { return s.n.Estimate() }

// LengthCounterBits returns the current state size of the length counter —
// the resource the approximate variant shrinks.
func (s *Sampler) LengthCounterBits() int { return s.n.StateBits() }

// Capacity returns k.
func (s *Sampler) Capacity() int { return s.k }
