// Command metricssmoke is the end-to-end observability smoke test: it
// launches a real counterd process in cluster mode, waits for the
// readiness gate, drives increments through the HTTP surface, then scrapes
// GET /metrics and validates the whole exposition with the shared linter
// (internal/metrics.LintExposition) — the same parser the unit tests use —
// and asserts the key series from every instrumented layer (store, WAL,
// HTTP, cluster, rebalance) are present with sane values. It also fetches
// the embedded ops dashboard and checks it serves self-contained HTML.
// Exits non-zero on any violation.
//
// Usage: go run ./tools/metricssmoke -counterd bin/counterd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/metrics"
)

func main() {
	counterd := flag.String("counterd", "bin/counterd", "path to the counterd binary")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if err := run(*counterd); err != nil {
		log.Fatalf("metricssmoke: FAIL: %v", err)
	}
	log.Printf("metricssmoke: OK")
}

func run(counterd string) error {
	work, err := os.MkdirTemp("", "metricssmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	port, err := freePort()
	if err != nil {
		return err
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	logf, err := os.Create(filepath.Join(work, "counterd.log"))
	if err != nil {
		return err
	}
	defer logf.Close()

	cmd := exec.Command(counterd,
		"-cluster",
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-dir", filepath.Join(work, "data"),
		"-n", "10000", "-partitions", "8", "-rf", "1",
		"-gossip", "100ms", "-rebalance", "100ms",
		"-fsync", "always",
	)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	log.Printf("counterd up at %s (work %s)", base, work)

	hc := &http.Client{Timeout: 5 * time.Second}

	// The readiness gate must open once the solo node reconciles its ring.
	if err := await(hc, base+"/readyz", http.StatusOK, 10*time.Second); err != nil {
		return fmt.Errorf("readiness gate never opened: %w", err)
	}

	// Drive traffic so every layer has observations: 50 batches, a read, a
	// top-k, a deliberate 404 (error-path counter).
	for i := 0; i < 50; i++ {
		body, _ := json.Marshal(map[string][]int{"keys": {1, 2, 2, 7, 7, 7, i % 10000}})
		resp, err := hc.Post(base+"/v1/inc", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("POST /v1/inc: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/inc: status %d", resp.StatusCode)
		}
	}
	for _, p := range []string{"/v1/estimate/7", "/v1/topk?k=5", "/v1/cluster/ring", "/v1/estimate/999999999"} {
		resp, err := hc.Get(base + p)
		if err != nil {
			return fmt.Errorf("GET %s: %w", p, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Scrape and validate the full exposition.
	body, err := fetch(hc, base+"/metrics")
	if err != nil {
		return err
	}
	if err := metrics.LintExposition(strings.NewReader(body)); err != nil {
		return fmt.Errorf("/metrics failed exposition lint: %w", err)
	}
	log.Printf("scraped %d bytes of valid exposition", len(body))

	// Key series from every instrumented layer, with live values where the
	// traffic above pins them exactly.
	for _, want := range []string{
		`counterd_http_requests_total{endpoint="/inc",code="200"} 50`,
		`counterd_store_apply_keys_total{engine=`,
		"counterd_store_apply_seconds_bucket{",
		"counterd_store_keyspace_keys 10000",
		"counterd_store_partitions 8",
		"counterd_store_pending_partitions 0",
		"counterd_wal_fsync_seconds_count",
		"counterd_wal_segments",
		"counterd_cluster_ring_members 1",
		`counterd_cluster_members{state="alive"} 1`,
		"counterd_cluster_outbox_pending_keys",
		"counterd_rebalance_transfers 0",
		"counterd_store_start_time_seconds",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("/metrics is missing %q", want)
		}
	}

	// The ops dashboard must be a self-contained HTML document (no external
	// assets — it has to work from inside an airgapped cluster).
	resp, err := hc.Get(base + "/v1/cluster/dash")
	if err != nil {
		return fmt.Errorf("GET /v1/cluster/dash: %w", err)
	}
	dash, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/cluster/dash: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		return fmt.Errorf("dashboard Content-Type %q", ct)
	}
	for _, frag := range []string{"<!doctype html>", "counterd ops"} {
		if !strings.Contains(strings.ToLower(string(dash)), strings.ToLower(frag)) {
			return fmt.Errorf("dashboard HTML is missing %q", frag)
		}
	}
	for _, banned := range []string{"src=\"http", "href=\"http", "@import", "cdn."} {
		if strings.Contains(string(dash), banned) {
			return fmt.Errorf("dashboard references an external asset (%q)", banned)
		}
	}
	log.Printf("dashboard OK (%d bytes, self-contained)", len(dash))
	return nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func await(hc *http.Client, url string, want int, d time.Duration) error {
	deadline := time.Now().Add(d)
	var last string
	for time.Now().Before(deadline) {
		resp, err := hc.Get(url)
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if resp.StatusCode == want {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("GET %s never answered %d (last: %s)", url, want, last)
}

func fetch(hc *http.Client, url string) (string, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
