package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is one persistent client connection: dialed once, handshaken, then
// reused for a synchronous frame-in/ack-out request sequence. It is safe
// for concurrent use (a mutex serializes request/reply pairs); throughput
// scaling comes from batching, not pipelining — a coalesced 4096-event
// frame amortizes the round trip to a fraction of a microsecond per event.
type Conn struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	timeout time.Duration

	// reusable buffers: packed payload, framed output, read scratch, sort
	// scratch — steady-state sends allocate nothing.
	payload []byte
	out     []byte
	scratch []byte
	sortBuf []int
}

// Dial connects to a wire server at addr (host:port) and performs the
// handshake. timeout bounds the dial and every subsequent request/reply
// round trip (0 = 5s).
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // request/reply framing; don't wait for Nagle
	}
	c := &Conn{conn: nc, br: bufio.NewReaderSize(nc, 64<<10), timeout: timeout}
	nc.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(nc, FrameHello, helloPayload()); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, err)
	}
	typ, payload, _, err := ReadFrame(c.br, nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, err)
	}
	if typ == FrameError {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, parseError(payload))
	}
	if typ != FrameHello {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: unexpected frame type %d", addr, typ)
	}
	if _, err := parseHello(payload); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, err)
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// SendBatch ships keys (one element per event) as a coordinated BATCH frame
// and waits for the ack, returning the applied count. A *RemoteError means
// the server answered on a healthy stream (the connection stays usable);
// any other error means the stream state is unknown and the caller should
// Close and redial.
func (c *Conn) SendBatch(keys []int) (int, error) { return c.send(FrameBatch, keys) }

// SendRepl ships keys as a replica-apply REPL frame (no re-fan-out at the
// receiver) and waits for the ack.
func (c *Conn) SendRepl(keys []int) (int, error) { return c.send(FrameRepl, keys) }

// SendReplAt ships keys as an epoch-tagged REPLAT frame: the receiver heals
// them into the bucket still labelled epoch (or drops the ones whose bucket
// rotated out) instead of counting them in its current bucket. A *RemoteError
// with code 400 means the peer predates the frame — fall back to the HTTP
// repl path, which carries the epoch in JSON.
func (c *Conn) SendReplAt(keys []int, epoch uint64) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.payload = binary.AppendUvarint(c.payload[:0], epoch)
	c.payload, c.sortBuf = AppendBatch(c.payload, keys, c.sortBuf)
	if len(c.payload) > MaxFramePayload {
		return 0, ErrFrameTooLarge
	}
	c.out = AppendFrame(c.out[:0], FrameReplAt, c.payload)

	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.out); err != nil {
		return 0, err
	}
	rtyp, rpayload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return 0, err
	}
	switch rtyp {
	case FrameAck:
		return parseAck(rpayload)
	case FrameError:
		return 0, parseError(rpayload)
	default:
		return 0, fmt.Errorf("wire: unexpected frame type %d to replat", rtyp)
	}
}

// Ping round-trips a PING frame — a liveness probe through the full framing
// path.
func (c *Conn) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if err := WriteFrame(c.conn, FramePing, nil); err != nil {
		return err
	}
	typ, payload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return err
	}
	if typ == FrameError {
		return parseError(payload)
	}
	if typ != FramePong {
		return fmt.Errorf("wire: unexpected frame type %d to ping", typ)
	}
	return nil
}

func (c *Conn) send(typ byte, keys []int) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.payload, c.sortBuf = AppendBatch(c.payload[:0], keys, c.sortBuf)
	if len(c.payload) > MaxFramePayload {
		return 0, ErrFrameTooLarge
	}
	c.out = AppendFrame(c.out[:0], typ, c.payload)

	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.out); err != nil {
		return 0, err
	}
	rtyp, rpayload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return 0, err
	}
	switch rtyp {
	case FrameAck:
		return parseAck(rpayload)
	case FrameError:
		return 0, parseError(rpayload)
	default:
		return 0, fmt.Errorf("wire: unexpected frame type %d to batch", rtyp)
	}
}

// Fetch pulls one partition snapshot for the rebalance handoff: a FETCH
// frame carrying the partition and the puller's ring version, answered by a
// SNAP frame (role + snapcodec blob) or an ERROR. The returned blob is a
// copy, safe to hold across further calls. A *RemoteError with code 409
// means the source's ring has not converged to the puller's version yet —
// retry later; code 400 means the peer predates the handoff frames — fall
// back to HTTP.
func (c *Conn) Fetch(partition int, ringVer uint64) (role byte, blob []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = AppendFrame(c.out[:0], FrameFetch, fetchPayload(partition, ringVer))
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.out); err != nil {
		return 0, nil, err
	}
	rtyp, rpayload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return 0, nil, err
	}
	switch rtyp {
	case FrameSnap:
		role, raw, err := parseSnap(rpayload)
		if err != nil {
			return 0, nil, err
		}
		return role, append([]byte(nil), raw...), nil
	case FrameError:
		return 0, nil, parseError(rpayload)
	default:
		return 0, nil, fmt.Errorf("wire: unexpected frame type %d to fetch", rtyp)
	}
}

// BlockHashes pulls partition p's per-block register hashes for delta
// anti-entropy: a BHASH frame answered by a BHASHES frame carrying the
// partition's write version and one hash per snapcodec block. A *RemoteError
// with code 400 means the peer predates the delta frames — fall back to the
// HTTP phash surface or a full-partition exchange.
func (c *Conn) BlockHashes(partition int) (version uint64, hashes []uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = AppendFrame(c.out[:0], FrameBHash, bhashPayload(partition))
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.out); err != nil {
		return 0, nil, err
	}
	rtyp, rpayload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return 0, nil, err
	}
	switch rtyp {
	case FrameBHashes:
		return parseBHashes(rpayload)
	case FrameError:
		return 0, nil, parseError(rpayload)
	default:
		return 0, nil, fmt.Errorf("wire: unexpected frame type %d to bhash", rtyp)
	}
}

// BlockDelta pulls a snapcodec delta snapshot of partition p carrying only
// the listed blocks (strictly ascending) — the divergent-block transfer of
// delta anti-entropy. The returned blob is a copy, safe to hold across
// further calls.
func (c *Conn) BlockDelta(partition int, blocks []uint32) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = AppendFrame(c.out[:0], FrameBDelta, bdeltaPayload(partition, blocks))
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetDeadline(time.Time{})
	if _, err := c.conn.Write(c.out); err != nil {
		return nil, err
	}
	rtyp, rpayload, scratch, err := ReadFrame(c.br, c.scratch)
	c.scratch = scratch
	if err != nil {
		return nil, err
	}
	switch rtyp {
	case FrameDelta:
		return append([]byte(nil), rpayload...), nil
	case FrameError:
		return nil, parseError(rpayload)
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %d to bdelta", rtyp)
	}
}

// Pool is a lazily-dialed set of persistent connections, one per address —
// what the smart client and the replica fan-out keep across batches so the
// hot path never pays a dial or a handshake. Safe for concurrent use; a
// connection that errors at the transport level is dropped and redialed on
// the next send.
type Pool struct {
	timeout time.Duration

	mu    sync.Mutex
	conns map[string]*Conn

	dials   atomic.Uint64
	redials atomic.Uint64
}

// NewPool builds an empty pool. timeout is the per-operation deadline
// passed to Dial (0 = 5s).
func NewPool(timeout time.Duration) *Pool {
	return &Pool{timeout: timeout, conns: make(map[string]*Conn)}
}

func (p *Pool) get(addr string) (*Conn, error) {
	p.mu.Lock()
	c, ok := p.conns[addr]
	p.mu.Unlock()
	if ok {
		return c, nil
	}
	c, err := Dial(addr, p.timeout)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.mu.Lock()
	if prev, ok := p.conns[addr]; ok {
		// Lost a dial race; keep the established one.
		p.mu.Unlock()
		c.Close()
		return prev, nil
	}
	p.conns[addr] = c
	p.mu.Unlock()
	return c, nil
}

// drop removes and closes the cached connection for addr if it is still c.
func (p *Pool) drop(addr string, c *Conn) {
	p.mu.Lock()
	if p.conns[addr] == c {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// SendBatch ships a coordinated batch to addr over the pooled connection,
// dialing on first use. On a transport error the stale connection is
// dropped and one fresh dial+retry happens before giving up — the pooled
// conn may simply have been idle past the server's timeout.
func (p *Pool) SendBatch(addr string, keys []int) (int, error) {
	return p.send(addr, keys, (*Conn).SendBatch)
}

// SendRepl ships a replica-apply batch to addr over the pooled connection.
func (p *Pool) SendRepl(addr string, keys []int) (int, error) {
	return p.send(addr, keys, (*Conn).SendRepl)
}

// SendReplAt ships an epoch-tagged replica-apply batch to addr over the
// pooled connection.
func (p *Pool) SendReplAt(addr string, keys []int, epoch uint64) (int, error) {
	return p.send(addr, keys, func(c *Conn, k []int) (int, error) {
		return c.SendReplAt(k, epoch)
	})
}

// BlockHashes pulls partition p's per-block hashes from addr over the pooled
// connection, with the same drop+redial-once policy as the send paths.
func (p *Pool) BlockHashes(addr string, partition int) (uint64, []uint64, error) {
	c, err := p.get(addr)
	if err != nil {
		return 0, nil, err
	}
	ver, hashes, err := c.BlockHashes(partition)
	if err == nil {
		return ver, hashes, nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return 0, nil, err
	}
	c, err = p.redial(addr, c)
	if err != nil {
		return 0, nil, err
	}
	return c.BlockHashes(partition)
}

// BlockDelta pulls a divergent-block delta snapshot from addr over the
// pooled connection, with the same drop+redial-once policy as the send paths.
func (p *Pool) BlockDelta(addr string, partition int, blocks []uint32) ([]byte, error) {
	c, err := p.get(addr)
	if err != nil {
		return nil, err
	}
	blob, err := c.BlockDelta(partition, blocks)
	if err == nil {
		return blob, nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return nil, err
	}
	c, err = p.redial(addr, c)
	if err != nil {
		return nil, err
	}
	return c.BlockDelta(partition, blocks)
}

// redial drops a pooled connection that failed at the transport level and
// dials its replacement — the shared second half of every drop+redial-once
// recovery path.
func (p *Pool) redial(addr string, old *Conn) (*Conn, error) {
	p.drop(addr, old)
	c, err := Dial(addr, p.timeout)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	p.redials.Add(1)
	p.mu.Lock()
	p.conns[addr] = c
	p.mu.Unlock()
	return c, nil
}

func (p *Pool) send(addr string, keys []int, op func(*Conn, []int) (int, error)) (int, error) {
	c, err := p.get(addr)
	if err != nil {
		return 0, err
	}
	applied, err := op(c, keys)
	if err == nil {
		return applied, nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		// The server answered; the connection is healthy and the request
		// is definitively rejected. No retry.
		return 0, err
	}
	p.drop(addr, c)
	if c, err = Dial(addr, p.timeout); err != nil {
		return 0, err
	}
	p.dials.Add(1)
	p.redials.Add(1)
	p.mu.Lock()
	p.conns[addr] = c
	p.mu.Unlock()
	return op(c, keys)
}

// Fetch pulls one partition snapshot from addr over the pooled connection,
// with the same drop+redial-once policy as the send paths.
func (p *Pool) Fetch(addr string, partition int, ringVer uint64) (byte, []byte, error) {
	c, err := p.get(addr)
	if err != nil {
		return 0, nil, err
	}
	role, blob, err := c.Fetch(partition, ringVer)
	if err == nil {
		return role, blob, nil
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return 0, nil, err
	}
	p.drop(addr, c)
	if c, err = Dial(addr, p.timeout); err != nil {
		return 0, nil, err
	}
	p.dials.Add(1)
	p.redials.Add(1)
	p.mu.Lock()
	p.conns[addr] = c
	p.mu.Unlock()
	return c.Fetch(partition, ringVer)
}

// Dials returns the total connections this pool has dialed.
func (p *Pool) Dials() uint64 { return p.dials.Load() }

// Redials returns how many of those dials replaced a pooled connection
// that failed at the transport level (drop + redial-once recovery).
func (p *Pool) Redials() uint64 { return p.redials.Load() }

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.conns {
		c.Close()
		delete(p.conns, addr)
	}
}
