package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/snapcodec"
)

// awaitRebalanced polls until every node is reconciled at the SAME ring
// version with no pending installs and no frozen copies left to hand off —
// the cluster-wide "rebalance complete" condition an operator watches on
// GET /v1/cluster/rebalance.
func awaitRebalanced(t testing.TB, nodes []*testNode) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		var ver string
		for i, tn := range nodes {
			s := tn.node.reb.status()
			if !s.Reconciled || len(s.Pending) > 0 || len(s.Frozen) > 0 {
				ok = false
				break
			}
			if i == 0 {
				ver = s.RingVersion
			} else if s.RingVersion != ver {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, tn := range nodes {
				s := tn.node.reb.status()
				t.Logf("%s: reconciled=%v ring=%s pending=%v frozen=%v transfers=%+v",
					tn.self, s.Reconciled, s.RingVersion, s.Pending, s.Frozen, s.Transfers)
			}
			t.Fatal("rebalance never settled")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// replicaSets snapshots partition → replica set for diffing rings across a
// membership change.
func replicaSets(r *Ring, parts int) map[int][]string {
	out := make(map[int][]string, parts)
	for p := 0; p < parts; p++ {
		out[p] = r.Replicas(p)
	}
	return out
}

// TestClusterRebalanceGrowShrink is the rebalancing acceptance test: a
// loaded 3-node RF=2 ring grows to 5 nodes under concurrent Zipf load —
// the joiners must receive the moved partitions' full history via handoff
// (not start cold) and serve reads the moment their installs commit — then
// shrinks back to 4 via a live decommission, with zero acknowledged
// increments lost across both transitions and every replica set
// byte-identical per partition at the end of each phase.
func TestClusterRebalanceGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("5-node loopback rebalance cluster")
	}
	cc := defaultClusterConfig()
	cc.wire = true // handoff pulls prefer the wire FETCH frame
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	n2 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n2.shutdown()
	old := []*testNode{n0, n1, n2}
	awaitMembers(t, old)

	const batch = 256
	truth := make([]uint64, cc.n)
	add := func(tr []uint64) {
		for k, c := range tr {
			truth[k] += c
		}
	}

	// Build up history worth moving, and let the bootstrap installs settle
	// so the grow starts from a warm, reconciled ring.
	add(driveLoad(t, old, cc, 30_000, batch, 21))
	awaitRebalanced(t, old)
	before := replicaSets(n0.node.Ring(), cc.partitions)

	// Grow 3 → 5 while writers keep hammering the ORIGINAL members: their
	// coordinators must keep acking and buffer the moved partitions' live
	// writes toward the joiners.
	var wg sync.WaitGroup
	growLoad := make([][]uint64, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			growLoad[g] = driveLoad(t, []*testNode{old[g], old[g+1]}, cc, 20_000, batch, uint64(30+g))
		}(g)
	}
	n3 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n3.shutdown()
	n4 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	nodes5 := []*testNode{n0, n1, n2, n3, n4}
	awaitMembers(t, nodes5)
	wg.Wait()
	for _, tr := range growLoad {
		add(tr)
	}
	awaitRebalanced(t, nodes5)

	// The ring actually moved ownership, and the handoff actually streamed
	// state (a cold joiner that relied on anti-entropy would show zero
	// rebalance traffic).
	after := replicaSets(n0.node.Ring(), cc.partitions)
	movedParts := 0
	for p := 0; p < cc.partitions; p++ {
		if fmt.Sprint(before[p]) != fmt.Sprint(after[p]) {
			movedParts++
		}
	}
	if movedParts == 0 {
		t.Fatal("adding two members moved no partitions")
	}
	var installed, streamed uint64
	for _, tn := range nodes5 {
		s := tn.node.reb.status()
		installed += s.Moved
		streamed += s.BytesStreamed
	}
	if installed == 0 || streamed == 0 {
		t.Fatalf("no handoff traffic: %d installs, %d bytes streamed", installed, streamed)
	}
	t.Logf("grow: %d/%d partitions changed owners, %d installs, %d bytes streamed",
		movedParts, cc.partitions, installed, streamed)

	// New owners serve reads immediately: every partition a joiner owns
	// answers GET /estimate with 200 right now — no cold window, no 421s
	// left, no waiting for anti-entropy.
	ring := n0.node.Ring()
	for _, joiner := range []*testNode{n3, n4} {
		for p := 0; p < cc.partitions; p++ {
			if !ring.Owns(joiner.self, p) {
				continue
			}
			lo, _ := snapcodec.PartitionRange(cc.n, cc.partitions, p)
			if _, err := joiner.fetch(fmt.Sprintf("/estimate/%d", lo)); err != nil {
				t.Fatalf("joiner %s partition %d: %v", joiner.self, p, err)
			}
		}
	}

	// Settle and verify: replicas byte-identical per partition, estimates
	// still inside the Morris budget → nothing was lost in the move.
	add(driveLoad(t, nodes5, cc, 10_000, batch, 40))
	awaitPartitionConvergence(t, nodes5, cc.partitions)
	checkEstimates(t, nodes5, cc, truth, "after grow 3->5")

	// Shrink 5 → 4: decommission n4 while writers keep going against other
	// members. Decommission must hand off every partition n4 owned (frozen
	// copies pulled or confirmed elsewhere) before it returns.
	var shrinkWg sync.WaitGroup
	var shrinkLoad []uint64
	shrinkWg.Add(1)
	go func() {
		defer shrinkWg.Done()
		shrinkLoad = driveLoad(t, []*testNode{n0, n1, n2}, cc, 15_000, batch, 50)
	}()
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := n4.node.Decommission(dctx); err != nil {
		cancel()
		t.Fatalf("decommission: %v", err)
	}
	cancel()
	shrinkWg.Wait()
	add(shrinkLoad)
	n4.shutdown()

	nodes4 := []*testNode{n0, n1, n2, n3}
	awaitMembers(t, nodes4) // survivors see the leaver dead, ring at 4
	awaitRebalanced(t, nodes4)
	add(driveLoad(t, nodes4, cc, 10_000, batch, 60))
	awaitPartitionConvergence(t, nodes4, cc.partitions)
	checkEstimates(t, nodes4, cc, truth, "after shrink 5->4")

	// Surrendered copies were confirmed and reclaimed somewhere along the
	// way (grow made the original members surrender partitions).
	var evicted uint64
	for _, tn := range nodes4 {
		evicted += tn.node.reb.status().Evicted
	}
	if evicted == 0 {
		t.Fatal("no surrendered partition was ever evicted")
	}
}
