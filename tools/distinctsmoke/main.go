// Command distinctsmoke is the live unique-counting smoke test: it launches
// a real 3-node RF=3 counterd ring serving the distinct engine as separate
// OS processes, drives a Zipf stream at it while tracking the exact set of
// keys touched, verifies every node answers GET /distinct within the HLL
// error bound of the truth, then kill -9s one node mid-stream, restarts it
// from its directory, and verifies the healed ring serves byte-identical
// whole-engine snapshots and the same cardinality — register-max repair
// cannot double-count, so the estimate must not drift through the crash.
// Exits non-zero on any violation.
//
// Usage: go run ./tools/distinctsmoke -counterd bin/counterd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"
)

const (
	keys       = 20000
	partitions = 16
	rf         = 3
	precision  = 10
)

type node struct {
	idx  int
	addr string // host:port, stable across restarts
	base string // http://host:port
	dir  string
	cmd  *exec.Cmd
	log  *os.File
}

type smoke struct {
	counterd string
	work     string
	nodes    []*node
	truthMu  sync.Mutex
	seen     []bool
	hc       *http.Client
}

func main() {
	counterd := flag.String("counterd", "bin/counterd", "path to the counterd binary")
	keep := flag.Bool("keep", false, "keep the work directory on exit")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	work, err := os.MkdirTemp("", "distinctsmoke-*")
	if err != nil {
		log.Fatal(err)
	}
	s := &smoke{
		counterd: *counterd,
		work:     work,
		seen:     make([]bool, keys),
		hc:       &http.Client{Timeout: 5 * time.Second},
	}
	defer func() {
		for _, n := range s.nodes {
			if n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
			n.log.Close()
		}
		if *keep {
			log.Printf("work dir kept: %s", work)
		} else {
			os.RemoveAll(work)
		}
	}()
	if err := s.run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Print("PASS: distinct ring survived kill -9 with byte-identical recovery and a stable cardinality")
}

func (s *smoke) run() error {
	for i := 0; i < 3; i++ {
		if err := s.start(i, ""); err != nil {
			return err
		}
	}
	if err := s.awaitMembers(3); err != nil {
		return err
	}
	log.Print("3-node distinct ring up")

	// Phase 1: Zipf load against the healthy ring, then verify.
	if err := s.load(s.nodes, 30000, 11); err != nil {
		return err
	}
	if err := s.verify("after load"); err != nil {
		return err
	}

	// kill -9 node 2 mid-stream: the survivors keep counting, their fan-out
	// for node 2 queues as hinted handoff.
	victim := s.nodes[2]
	if err := victim.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill node 2: %w", err)
	}
	victim.cmd.Wait()
	victim.cmd = nil
	log.Print("node 2 killed (SIGKILL)")
	if err := s.load(s.nodes[:2], 20000, 23); err != nil {
		return err
	}

	// Restart node 2 from its directory on its old address: WAL replay,
	// gossip rejoin, hint drain, anti-entropy repair.
	if err := s.start(2, victim.addr); err != nil {
		return err
	}
	s.nodes[2] = s.nodes[3]
	s.nodes[2].idx = 2
	s.nodes = s.nodes[:3]
	if err := s.awaitMembers(3); err != nil {
		return err
	}
	log.Print("node 2 restarted and rejoined")
	if err := s.load(s.nodes, 15000, 37); err != nil {
		return err
	}
	return s.verify("after crash recovery")
}

// start launches one counterd process; addr "" picks a fresh loopback port,
// otherwise the node reuses its old address (a restart).
func (s *smoke) start(i int, addr string) error {
	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr = ln.Addr().String()
		ln.Close()
	}
	dir := filepath.Join(s.work, fmt.Sprintf("node%d", i))
	logf, err := os.OpenFile(filepath.Join(s.work, fmt.Sprintf("node%d.log", i)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	args := []string{
		"-addr", addr, "-dir", dir,
		"-n", fmt.Sprint(keys), "-partitions", fmt.Sprint(partitions), "-shards", "8",
		"-engine", "distinct", "-distinct-precision", fmt.Sprint(precision),
		"-fsync", "off", "-checkpoint", "2s",
		"-cluster", "-rf", fmt.Sprint(rf),
		"-gossip", "100ms", "-antientropy", "500ms", "-rebalance", "100ms",
	}
	if i > 0 {
		args = append(args, "-join", s.nodes[0].base)
	}
	cmd := exec.Command(s.counterd, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("start node %d: %w", i, err)
	}
	n := &node{idx: i, addr: addr, base: "http://" + addr, dir: dir, cmd: cmd, log: logf}
	s.nodes = append(s.nodes, n)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp, err := s.hc.Get(n.base + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				log.Printf("node %d serving at %s", i, n.base)
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %d never became healthy", i)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (s *smoke) getJSON(url string, out any) error {
	resp, err := s.hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<26)).Decode(out)
}

type memberRow struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// awaitMembers waits until every node's member table shows want alive rows.
func (s *smoke) awaitMembers(want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, n := range s.nodes[:want] {
			var info struct {
				Members []memberRow
			}
			if err := s.getJSON(n.base+"/v1/cluster/info", &info); err != nil {
				ok = false
				break
			}
			alive := 0
			for _, m := range info.Members {
				if m.State == "alive" {
					alive++
				}
			}
			if alive != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("membership never converged to %d alive nodes", want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// load posts Zipf batches round-robin across nodes, failing over on errors,
// and folds the acked keys into the shared truth set.
func (s *smoke) load(nodes []*node, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, keys-1)
	batch := make([]int, 0, 256)
	sent := 0
	for i := 0; sent < events; i++ {
		batch = batch[:0]
		for len(batch) < cap(batch) && sent+len(batch) < events {
			batch = append(batch, int(zipf.Uint64()))
		}
		body, _ := json.Marshal(map[string][]int{"keys": batch})
		var lastErr error
		acked := false
		for try := 0; try < len(nodes) && !acked; try++ {
			n := nodes[(i+try)%len(nodes)]
			resp, err := s.hc.Post(n.base+"/v1/inc", "application/json", bytes.NewReader(body))
			if err != nil {
				lastErr = err
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				acked = true
			} else {
				lastErr = fmt.Errorf("inc: status %d", resp.StatusCode)
			}
		}
		if !acked {
			return fmt.Errorf("no node accepted a batch: %w", lastErr)
		}
		s.truthMu.Lock()
		for _, k := range batch {
			s.seen[k] = true
		}
		s.truthMu.Unlock()
		sent += len(batch)
	}
	return nil
}

// verify checks the distinct-ring invariants: every node serves a
// byte-identical whole-engine GET /snapshot (RF = ring size, so all three
// absorb the same logical stream), and every node's GET /distinct answers
// the exact truth cardinality within 3 standard errors of the HLL bound.
func (s *smoke) verify(label string) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		diverged := ""
		var want []byte
		for _, n := range s.nodes {
			resp, err := s.hc.Get(n.base + "/v1/snapshot")
			if err != nil {
				diverged = err.Error()
				break
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				diverged = fmt.Sprintf("node %d: status %d (%v)", n.idx, resp.StatusCode, err)
				break
			}
			if want == nil {
				want = blob
			} else if !bytes.Equal(want, blob) {
				diverged = fmt.Sprintf("node %d: whole-engine snapshot differs", n.idx)
			}
		}
		if diverged == "" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: snapshots never converged: %s", label, diverged)
		}
		time.Sleep(250 * time.Millisecond)
	}

	s.truthMu.Lock()
	trueCard := 0
	for _, ok := range s.seen {
		if ok {
			trueCard++
		}
	}
	s.truthMu.Unlock()
	bound := 3 * 1.04 / math.Sqrt(float64(partitions)*math.Pow(2, precision))
	var first float64
	for i, n := range s.nodes {
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		if err := s.getJSON(n.base+"/v1/distinct", &out); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if i == 0 {
			first = out.Estimate
		} else if out.Estimate != first {
			return fmt.Errorf("%s: node %d estimate %v != node 0's %v despite identical snapshots",
				label, i, out.Estimate, first)
		}
		rel := math.Abs(out.Estimate-float64(trueCard)) / float64(trueCard)
		if rel > bound {
			return fmt.Errorf("%s: node %d estimate %v vs true %d: rel err %.4f > %.4f",
				label, i, out.Estimate, trueCard, rel, bound)
		}
	}
	log.Printf("%s: true cardinality %d, cluster estimate %.1f (|rel err| %.3f%%, bound %.3f%%)",
		label, trueCard, first, 100*math.Abs(first-float64(trueCard))/float64(trueCard), 100*bound)
	return nil
}
