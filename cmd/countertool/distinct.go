// The distinct subcommand: a Zipf unique-count driver for a running
// counterd cluster (or single daemon) serving the distinct engine. It
// pushes a skewed stream through the ring-aware smart client while tracking
// the exact set of keys touched, then asks the cluster for its cardinality
// (every partition's GET /distinct, summed client-side — partitions tile
// disjoint key ranges, so the scalars are additive) and reports the
// estimate's relative error against the HLL 1.04/sqrt(m) standard error.
//
// The interesting demo is idempotence: kill -9 a node mid-stream, restart
// it, run `countertool distinct -events 0` again — the healed ring reports
// the same cardinality, because register-max repair cannot double-count
// (see docs/ENGINES.md).
//
//	counterd -cluster -engine distinct ... (×3) &
//	countertool distinct -nodes http://localhost:8347 -events 1000000 -zipf 1.2
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func distinctMain(args []string) {
	fs := flag.NewFlagSet("distinct", flag.ExitOnError)
	var (
		nodes     = fs.String("nodes", "http://localhost:8347", "comma-separated seed node base URLs")
		events    = fs.Int("events", 1_000_000, "events to send before querying (0 = query only)")
		batch     = fs.Int("batch", 1024, "keys per POST /inc request")
		zipfS     = fs.Float64("zipf", 1.2, "Zipf exponent of the key popularity law")
		window    = fs.String("window", "", "window-scope the query, e.g. 5m or 3 (windowed distinct engine)")
		precision = fs.Int("precision", 12, "server-side HLL precision p, for the error bound report")
		seed      = fs.Uint64("seed", 42, "key stream seed")
	)
	fs.Parse(args)
	seeds := strings.Split(*nodes, ",")

	c, err := client.New(client.Config{Seeds: seeds, BatchSize: *batch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "distinct: %v\n", err)
		os.Exit(1)
	}
	n := c.N()
	parts := c.Partitions()
	fmt.Printf("cluster: %d keys, %d partitions, members %v\n", n, parts, c.Ring().Members())

	var trueCard int
	if *events > 0 {
		seen := make([]bool, n)
		src := stream.NewZipf(uint64(n), *zipfS, xrand.NewSeeded(*seed))
		for i := 0; i < *events; i++ {
			key := int(src.Next())
			if !seen[key] {
				seen[key] = true
				trueCard++
			}
			if err := c.Inc(key); err != nil {
				fmt.Fprintf(os.Stderr, "distinct: inc: %v\n", err)
				os.Exit(1)
			}
		}
		if err := c.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "distinct: flush: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("acked %d Zipf(%.2f) events touching %d distinct keys\n", *events, *zipfS, trueCard)
	}

	res, err := c.Query(context.Background(), client.QueryOptions{
		Kind: client.KindDistinct, Window: *window,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "distinct: query: %v\n", err)
		os.Exit(1)
	}
	scope := "all time"
	if *window != "" {
		scope = "window " + *window
	}
	fmt.Printf("cluster cardinality estimate (%s): %.1f\n", scope, res.Estimate)
	if *events == 0 {
		return
	}

	// The cluster-wide sketch spans partitions × 2^p registers; its standard
	// error is the single-HLL 1.04/sqrt(m) law at that total register count.
	m := float64(parts) * math.Pow(2, float64(*precision))
	se := 1.04 / math.Sqrt(m)
	rel := (res.Estimate - float64(trueCard)) / float64(trueCard)
	fmt.Printf("true cardinality %d, relative error %+.3f%% (HLL standard error ±%.3f%% at p=%d × %d partitions)\n",
		trueCard, 100*rel, 100*se, *precision, parts)
	if math.Abs(rel) > 3*se {
		fmt.Fprintf(os.Stderr, "distinct: estimate outside 3 standard errors\n")
		os.Exit(1)
	}
}
