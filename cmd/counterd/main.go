// Command counterd serves a durable sharded counter bank over HTTP: the
// paper's motivating analytics system (millions of approximate counters in
// a few bits each) as a restartable network daemon.
//
// Every increment batch is WAL-logged before it is applied and acknowledged,
// so a kill -9 at any moment loses nothing that was acked: on restart the
// daemon loads its newest checkpoint (a compressed snapcodec snapshot that
// includes the per-shard rng states) and replays the WAL suffix, rebuilding
// bit-identical registers. A background loop checkpoints every -checkpoint
// interval, truncating the log so recovery stays fast.
//
// Endpoints (see internal/server):
//
//	POST /inc            {"key": 5} or {"keys": [1, 2, 2, 7]}
//	GET  /estimate/{key}
//	GET  /estimates
//	GET  /snapshot       compressed snapshot stream (feed to a peer's /merge)
//	POST /merge          ingest a peer snapshot (Remark 2.4 merge)
//	GET  /healthz
//
// Example:
//
//	counterd -addr :8347 -dir ./counterd-data -n 1000000 -shards 256
//	curl -X POST localhost:8347/inc -d '{"keys":[1,2,3,2]}'
//	curl localhost:8347/estimate/2
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "HTTP listen address")
		dir        = flag.String("dir", "./counterd-data", "data directory (WAL segments + checkpoints)")
		n          = flag.Int("n", 1_000_000, "number of registers (ignored when the data dir has a checkpoint)")
		shards     = flag.Int("shards", 256, "lock stripes (rounded to a power of two)")
		algo       = flag.String("algo", "morris", "register algorithm: morris | csuros | exact")
		a          = flag.Float64("a", 0.005, "Morris base parameter")
		width      = flag.Int("width", 14, "register width in bits")
		mantissa   = flag.Int("mantissa", 8, "Csűrös mantissa bits")
		seed       = flag.Uint64("seed", 42, "deterministic replay seed")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "checkpoint cadence (0 disables the loop)")
		segBytes   = flag.Int64("segbytes", 64<<20, "WAL segment rotation size")
		maxBatch   = flag.Int("maxbatch", 1<<16, "largest accepted increment batch")
		finalCkpt  = flag.Bool("final-checkpoint", true, "checkpoint on graceful shutdown")
	)
	flag.Parse()

	alg, err := server.ParseAlgorithm(*algo, *a, *width, *mantissa)
	if err != nil {
		log.Fatalf("counterd: %v", err)
	}
	st, err := server.Open(server.Config{
		Dir:          *dir,
		N:            *n,
		Shards:       *shards,
		Alg:          alg,
		Seed:         *seed,
		SegmentBytes: *segBytes,
		MaxBatch:     *maxBatch,
	})
	if err != nil {
		log.Fatalf("counterd: %v", err)
	}
	stats := st.Stats()
	log.Printf("counterd: %d registers × %d bits (%s), %d shards, recovered from %s (%d records replayed%s)",
		stats.N, stats.WidthBits, stats.Algorithm, stats.Shards,
		stats.RecoveredFrom, stats.ReplayedRecords, tornNote(stats.ReplayTorn))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background checkpoint loop: WAL → snapshot → truncate.
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if *checkpoint <= 0 {
			return
		}
		t := time.NewTicker(*checkpoint)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				start := time.Now()
				if err := st.Checkpoint(); err != nil {
					log.Printf("counterd: checkpoint failed: %v", err)
					continue
				}
				log.Printf("counterd: checkpoint in %v (wal truncated to segment %d)",
					time.Since(start).Round(time.Millisecond), st.Stats().CheckpointSeq)
			}
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: server.Handler(st)}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("counterd: serving on %s", *addr)

	select {
	case <-ctx.Done():
		log.Printf("counterd: shutting down")
	case err := <-errc:
		log.Fatalf("counterd: serve: %v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("counterd: http shutdown: %v", err)
	}
	<-ckptDone
	if err := st.Close(*finalCkpt); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("counterd: close: %v", err)
	}
	log.Printf("counterd: bye")
}

func tornNote(torn bool) string {
	if torn {
		return ", torn tail dropped"
	}
	return ""
}
