// Benchmarks for the reproduction. Two kinds:
//
//   - Per-operation microbenchmarks (BenchmarkIncrement*, BenchmarkMerge*)
//     measuring the counters themselves, including the skip-ahead ablation
//     called out in DESIGN.md §5.
//   - One benchmark per experiment table/figure (BenchmarkE1Fig1 ...,
//     matching DESIGN.md §3's index): each iteration regenerates the
//     experiment at reduced trial counts, so `go test -bench=.` exercises
//     every harness end to end and reports its cost.
package approxcount_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/csuros"
	"repro/internal/experiments"
	"repro/internal/morris"
	"repro/internal/xrand"
)

// --- Per-operation microbenchmarks -----------------------------------------

func BenchmarkIncrementNelsonYu(b *testing.B) {
	c := core.MustNew(core.Config{Eps: 0.1, DeltaLog: 20}, xrand.NewSeeded(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Increment()
	}
}

func BenchmarkIncrementMorris(b *testing.B) {
	c := morris.New(0.01, xrand.NewSeeded(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Increment()
	}
}

func BenchmarkIncrementMorrisPlus(b *testing.B) {
	c := morris.NewPlus(0.01, xrand.NewSeeded(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Increment()
	}
}

func BenchmarkIncrementCsuros(b *testing.B) {
	c := csuros.New(17, 14, xrand.NewSeeded(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Saturated() {
			c.Reset() // keep measuring the live path, not the saturated no-op
		}
		c.Increment()
	}
}

func BenchmarkIncrementExact(b *testing.B) {
	f := approxcount.NewFamily(1)
	c := f.Exact()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Increment()
	}
}

// BenchmarkIncrementByVsLoop is the skip-ahead ablation (DESIGN.md §5):
// driving a Morris counter through 100k events by geometric jumps vs by
// 100k per-event coin flips. Identical output law, very different cost.
func BenchmarkIncrementByVsLoop(b *testing.B) {
	const n = 100_000
	b.Run("skip-ahead", func(b *testing.B) {
		rng := xrand.NewSeeded(2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := morris.New(0.01, rng)
			c.IncrementBy(n)
		}
	})
	b.Run("per-event", func(b *testing.B) {
		rng := xrand.NewSeeded(2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := morris.New(0.01, rng)
			for j := 0; j < n; j++ {
				c.Increment()
			}
		}
	})
}

func BenchmarkMergeNelsonYu(b *testing.B) {
	rng := xrand.NewSeeded(3)
	cfg := core.Config{Eps: 0.2, DeltaLog: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c1 := core.MustNew(cfg, rng)
		c1.IncrementBy(100_000)
		c2 := core.MustNew(cfg, rng)
		c2.IncrementBy(100_000)
		if err := c1.Merge(c2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeMorris(b *testing.B) {
	rng := xrand.NewSeeded(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c1 := morris.New(0.01, rng)
		c1.IncrementBy(100_000)
		c2 := morris.New(0.01, rng)
		c2.IncrementBy(100_000)
		if err := c1.Merge(c2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeNelsonYu(b *testing.B) {
	rng := xrand.NewSeeded(5)
	c := core.MustNew(core.Config{Eps: 0.1, DeltaLog: 20}, rng)
	c.IncrementBy(1_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := approxcount.MarshalState(c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per experiment table/figure (DESIGN.md §3) --------------

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, 42, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", name)
		}
	}
}

// BenchmarkE1Fig1 regenerates Figure 1 (Section 4).
func BenchmarkE1Fig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkE2NYSpace regenerates the Theorem 2.1+2.3 sweep.
func BenchmarkE2NYSpace(b *testing.B) { benchExperiment(b, "nyspace") }

// BenchmarkE3MorrisPlus regenerates the Theorem 1.2 sweep.
func BenchmarkE3MorrisPlus(b *testing.B) { benchExperiment(b, "morrisplus") }

// BenchmarkE4DeltaScaling regenerates the log(1/δ) → log log(1/δ) table.
func BenchmarkE4DeltaScaling(b *testing.B) { benchExperiment(b, "deltascaling") }

// BenchmarkE5Tweak regenerates the Appendix A necessity table.
func BenchmarkE5Tweak(b *testing.B) { benchExperiment(b, "tweak") }

// BenchmarkE6LowerBound regenerates the Theorem 3.1 table.
func BenchmarkE6LowerBound(b *testing.B) { benchExperiment(b, "lowerbound") }

// BenchmarkE7Merge regenerates the Remark 2.4 table.
func BenchmarkE7Merge(b *testing.B) { benchExperiment(b, "merge") }

// BenchmarkE8Averaging regenerates the [Fla85] §5 comparison.
func BenchmarkE8Averaging(b *testing.B) { benchExperiment(b, "averaging") }

// BenchmarkE9aMoments regenerates the frequency-moments application table.
func BenchmarkE9aMoments(b *testing.B) { benchExperiment(b, "moments") }

// BenchmarkE9bHeavyHitters regenerates the heavy-hitters application table.
func BenchmarkE9bHeavyHitters(b *testing.B) { benchExperiment(b, "heavyhitters") }

// BenchmarkE9cReservoir regenerates the reservoir-sampling application table.
func BenchmarkE9cReservoir(b *testing.B) { benchExperiment(b, "reservoir") }

// BenchmarkE9dInversions regenerates the inversion-counting application table.
func BenchmarkE9dInversions(b *testing.B) { benchExperiment(b, "inversions") }

// BenchmarkAblateNYConst regenerates the C-constant ablation.
func BenchmarkAblateNYConst(b *testing.B) { benchExperiment(b, "nyconst") }

// BenchmarkExtRandBits regenerates the randomness-consumption table.
func BenchmarkExtRandBits(b *testing.B) { benchExperiment(b, "randbits") }

// BenchmarkExtInterp regenerates the interpolated-estimator ablation.
func BenchmarkExtInterp(b *testing.B) { benchExperiment(b, "interp") }
