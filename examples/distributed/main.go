// Distributed: shard a counting workload across workers and merge the
// shards' counters into one, exercising the full mergeability of the
// paper's Remark 2.4 — the merged counter is distributed exactly as one
// counter that saw every event, so nothing is lost in (ε, δ).
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"

	"repro"
)

func main() {
	family := approxcount.NewFamily(99)

	// Eight workers each count their own slice of a 4M-event stream.
	const workers = 8
	const perWorker = 500_000
	shards := make([]*approxcount.NelsonYu, workers)
	for w := range shards {
		c, err := family.NelsonYu(0.05, 1e-6)
		if err != nil {
			panic(err)
		}
		c.IncrementBy(perWorker) // skip-ahead: same law as per-event loops
		shards[w] = c
		fmt.Printf("worker %d counted ~%.0f events in %d state bits\n",
			w, c.Estimate(), c.StateBits())
	}

	// Fold all shards into shard 0 (tree or linear order — the merge is
	// associative in distribution).
	total := shards[0]
	for _, s := range shards[1:] {
		if err := approxcount.Merge(total, s); err != nil {
			panic(err)
		}
	}

	truth := float64(workers * perWorker)
	fmt.Printf("\nmerged estimate: %.0f (true %d)\n", total.Estimate(), workers*perWorker)
	fmt.Printf("relative error:  %+.3f%%\n", 100*(total.Estimate()-truth)/truth)
	fmt.Printf("merged state:    %d bits\n", total.StateBits())

	// Morris counters merge too ([CY20]); mixed parameters are rejected.
	m1 := family.Morris(0.01)
	m2 := family.Morris(0.01)
	m1.IncrementBy(300_000)
	m2.IncrementBy(700_000)
	if err := approxcount.Merge(m1, m2); err != nil {
		panic(err)
	}
	fmt.Printf("\nmorris merge:    %.0f (true 1000000)\n", m1.Estimate())

	bad := family.Morris(0.02)
	if err := approxcount.Merge(m1, bad); err != nil {
		fmt.Printf("mismatched merge rejected: %v\n", err)
	}
}
