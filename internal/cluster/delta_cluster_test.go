package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/engine"
)

// deltaClusterConfig sizes partitions so a narrow register neighborhood is a
// small fraction of a partition's blocks: 8192 keys over 4 partitions is
// 2048 registers — 16 snapcodec blocks — per partition, so divergence
// confined to one block passes the "fewer than half the blocks" delta
// threshold with plenty of room.
func deltaClusterConfig() testClusterConfig {
	cc := defaultClusterConfig()
	cc.n = 8192
	cc.partitions = 4
	cc.shards = 8
	cc.rf = 2
	return cc
}

// divergeBlock applies extra increments for a narrow key neighborhood
// directly to one node's store — bypassing the cluster write path, so no
// replication or hint ever tells the peer — until the pair's block
// fingerprints for partition 0 disagree in at least one but fewer than half
// the blocks (the delta anti-entropy window).
func divergeBlock(t *testing.T, ahead, behind *testNode) {
	t.Helper()
	keys := make([]int, 0, 64)
	for k := 16; k < 48; k++ {
		keys = append(keys, k, k)
	}
	for try := 0; ; try++ {
		if err := ahead.st.Apply(keys); err != nil {
			t.Fatalf("diverging apply: %v", err)
		}
		ha, err := ahead.st.PartitionBlockHashes(0)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := behind.st.PartitionBlockHashes(0)
		if err != nil {
			t.Fatal(err)
		}
		diff := 0
		for i := range ha {
			if ha[i] != hb[i] {
				diff++
			}
		}
		if diff > 0 && diff*2 < len(ha) {
			t.Logf("diverged %d of %d blocks after %d applies", diff, len(ha), try+1)
			return
		}
		if try >= 100 {
			t.Fatalf("narrow divergence never took: %d of %d blocks differ", diff, len(ha))
		}
	}
}

// TestClusterDeltaAntiEntropy: once a replica pair is byte-identical, a
// divergence confined to one register block must be repaired by the block
// delta path — the counters prove only divergent blocks traveled, and the
// pair still converges byte-identically.
func TestClusterDeltaAntiEntropy(t *testing.T) {
	if testing.Short() {
		t.Skip("2-node loopback cluster")
	}
	cc := deltaClusterConfig()
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	nodes := []*testNode{n0, n1}
	awaitMembers(t, nodes)

	driveLoad(t, nodes, cc, 30_000, 256, 7)
	awaitWholeBankConvergence(t, nodes)

	deltaBase := n0.node.aeDeltaSyncs.Value() + n1.node.aeDeltaSyncs.Value()
	savedBase := n0.node.aeBytesSaved.Value() + n1.node.aeBytesSaved.Value()
	divergeBlock(t, n1, n0)

	// Whichever side's anti-entropy loop notices first (quiescent
	// divergence gate: stable write version + mismatched partition hash)
	// must repair through the delta path, not a full snapshot exchange.
	waitUntil(t, 15*time.Second, "delta repair", func() bool {
		return n0.node.aeDeltaSyncs.Value()+n1.node.aeDeltaSyncs.Value() > deltaBase
	})
	awaitWholeBankConvergence(t, nodes)

	saved := n0.node.aeBytesSaved.Value() + n1.node.aeBytesSaved.Value() - savedBase
	var full countingWriter
	if err := n0.st.PartitionSnapshotTo(&full, 0); err != nil {
		t.Fatal(err)
	}
	// Repair bytes must be a small fraction of the full exchange: with a
	// narrow divergence the delta ships ≲ half the blocks each way, so the
	// savings must exceed half a full snapshot (in practice ~15/16 of one
	// per direction).
	if saved <= uint64(full)/2 {
		t.Fatalf("delta repair saved only %d bytes; full partition snapshot is %d", saved, int64(full))
	}
	t.Logf("delta repair saved %d bytes (full partition snapshot is %d)", saved, int64(full))
}

// TestClusterDeltaRebalanceWarmPull: a pending partition whose registers
// mostly match a warm co-owner installs through a block delta, not a full
// snapshot. Exact counters make replication deterministic (same increments →
// same registers), so the pair is byte-identical without anti-entropy — which
// the test parks to prove the delta pull alone both transfers the divergent
// blocks AND commits the install (clears the pending mark).
func TestClusterDeltaRebalanceWarmPull(t *testing.T) {
	if testing.Short() {
		t.Skip("2-node loopback cluster")
	}
	cc := deltaClusterConfig()
	cc.alg = bank.NewExactAlg(14)
	cc.aeInterval = time.Hour
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, t.TempDir(), "", cc, []string{n0.self})
	defer n1.shutdown()
	nodes := []*testNode{n0, n1}
	awaitMembers(t, nodes)
	// Both rebalancers must have reconciled the two-node ring (that is what
	// writes the durable ownership record the test amends below).
	waitUntil(t, 10*time.Second, "both nodes ready", func() bool {
		return n0.readyz() == http.StatusOK && n1.readyz() == http.StatusOK
	})

	driveLoad(t, nodes, cc, 30_000, 256, 7)
	// Replication (not anti-entropy: it is parked) makes the exact-counter
	// replicas identical once every outbox drains and applies.
	waitUntil(t, 15*time.Second, "replicas identical", func() bool {
		b0, err0 := n0.fetch("/snapshot/0")
		b1, err1 := n1.fetch("/snapshot/0")
		return err0 == nil && err1 == nil && bytes.Equal(b0, b1)
	})

	divergeBlock(t, n0, n1)

	// Re-mark partition 0 pending on n1, as a ring flip that re-owned a
	// mostly-warm copy would: the rebalancer must notice the narrow diff
	// and install via the delta pull.
	ver, pending, frozen, owned, ok := n1.st.Ownership()
	if !ok {
		t.Fatal("n1 has no ownership record")
	}
	if err := n1.st.SetOwnership(ver, append(pending, 0), frozen, owned); err != nil {
		t.Fatal(err)
	}
	if !n1.st.PendingPartition(0) {
		t.Fatal("partition 0 not pending after re-mark")
	}

	installed, err := n1.node.reb.pullDelta(n0.self, 0)
	if err != nil {
		t.Fatalf("pullDelta: %v", err)
	}
	if !installed {
		t.Fatal("pullDelta fell back to a full transfer for a one-block diff")
	}
	if n1.st.PendingPartition(0) {
		t.Fatal("delta install did not clear the pending mark")
	}
	if got := n1.node.rebDeltaPull.Value(); got != 1 {
		t.Fatalf("rebalance delta handoff counter = %d, want 1", got)
	}

	// The delta max-join converged the divergent blocks: with exact
	// registers the partition snapshots are byte-identical again.
	b0, err := n0.fetch("/snapshot/0")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := n1.fetch("/snapshot/0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b0, b1) {
		t.Fatal("partition 0 snapshots differ after the delta install")
	}
}

// TestClusterWindowHintDrainHealsOriginBucket: replication hints queued for
// a dead peer carry their origin bucket epoch, so a drain that lands AFTER
// the window rotated heals the bucket the events belong to instead of
// smearing them into the drain-time bucket. Anti-entropy is parked and the
// counters are exact, so the healed buckets are attributable to the tagged
// drain alone.
func TestClusterWindowHintDrainHealsOriginBucket(t *testing.T) {
	if testing.Short() {
		t.Skip("2-node loopback cluster")
	}
	clk := &atomic.Uint64{}
	cc := deltaClusterConfig()
	cc.engine = engine.KindWindow
	cc.buckets = 4
	cc.bucketDur = time.Minute
	cc.clock = clk.Load
	cc.alg = bank.NewExactAlg(14)
	cc.aeInterval = time.Hour

	dir1 := t.TempDir()
	n0 := startNode(t, t.TempDir(), "", cc, nil)
	defer n0.shutdown()
	n1 := startNode(t, dir1, "", cc, []string{n0.self})
	nodes := []*testNode{n0, n1}
	awaitMembers(t, nodes)

	post := func(key, times int) {
		t.Helper()
		keys := make([]int, 256)
		for i := range keys {
			keys[i] = key
		}
		for sent := 0; sent < times; sent += len(keys) {
			if err := n0.postInc(keys); err != nil {
				t.Fatalf("inc: %v", err)
			}
		}
	}

	// Epoch 0: background traffic while both replicas are up. Let its
	// replication drain fully before the kill — exact counters are not
	// idempotent, so the test must not leave a chunk in the
	// shipped-but-not-truncated window where a re-send would double-count.
	post(7, 1024)
	waitUntil(t, 10*time.Second, "epoch-0 replication drained", func() bool {
		var info Info
		if err := getJSON(n0.self+"/v1/cluster/info", &info); err != nil {
			return false
		}
		return info.OutboxPending[n1.self] == 0
	})

	// Kill n1; everything n0 acks from here on queues as hints for it.
	n1.kill()

	// Epoch 1: the origin bucket of the delayed hints.
	clk.Store(1)
	post(100, 5120)

	// Epoch 2: the window rotates on while the peer is still down.
	clk.Store(2)
	post(1100, 5120)

	// Restart n1 and let the hints drain. Without epoch tags both phases
	// would land in whatever bucket n1 is in at drain time.
	n1 = startNode(t, dir1, n1.addr, cc, []string{n0.self})
	defer n1.shutdown()
	nodes = []*testNode{n0, n1}
	awaitMembers(t, nodes)
	waitUntil(t, 15*time.Second, "hints drained to n1", func() bool {
		var info Info
		if err := getJSON(n0.self+"/v1/cluster/info", &info); err != nil {
			return false
		}
		return info.OutboxPending[n1.self] == 0
	})
	if n1.node.replRecvd.Value() == 0 {
		t.Fatal("restarted node applied no replication keys")
	}

	// The drained epoch-2 records must have ticked n1's window to the
	// origin epoch of the newest hints.
	if got := n1.st.WindowEpoch(); got != 2 {
		t.Fatalf("n1 window epoch = %d after tagged drain, want 2", got)
	}

	// Trailing bucket (epoch 2 only): the epoch-1 phase must NOT appear —
	// that is exactly the smear the tags remove — while the epoch-2 phase
	// counts in full. Exact registers make both assertions sharp.
	recent := fetchWindowTopK(t, n1, 5, "1")
	counts := map[int]float64{}
	for _, e := range recent {
		counts[e.Key] = e.Estimate
	}
	if _, smeared := counts[100]; smeared {
		t.Fatalf("epoch-1 key 100 smeared into the trailing bucket: %+v", recent)
	}
	if got := counts[1100]; got != 5120 {
		t.Fatalf("trailing bucket count for key 1100 = %.0f, want 5120: %+v", got, recent)
	}

	// Two trailing buckets (epochs 1+2): the delayed phase healed into its
	// origin bucket with its full count.
	wider := fetchWindowTopK(t, n1, 5, "2")
	counts = map[int]float64{}
	for _, e := range wider {
		counts[e.Key] = e.Estimate
	}
	if got := counts[100]; got != 5120 {
		t.Fatalf("window=2 count for key 100 = %.0f, want 5120: %+v", got, wider)
	}

	// Both replicas agree on the windowed report (replication alone
	// converged them; anti-entropy never ran).
	for _, win := range []string{"1", "2", "4"} {
		a := fetchWindowTopK(t, n0, 5, win)
		b := fetchWindowTopK(t, n1, 5, win)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("window=%s top-k diverges: %v vs %v", win, a, b)
		}
	}
}
