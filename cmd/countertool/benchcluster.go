// The bench-cluster subcommand: a ring-aware load driver for a running
// counterd cluster. Unlike bench-serve, which hammers one daemon, this uses
// the smart client (internal/client): it learns the ring from a seed node,
// shard-batches a Zipf increment stream per goroutine straight to each
// partition's primary, and reports the acknowledged cluster-wide ingest
// rate. -transport picks the ingest path: http (JSON POST /inc), wire (the
// internal/wire binary protocol, requires -listen-wire daemons), or auto
// (wire where advertised, HTTP otherwise). With -verify it tallies ground
// truth locally and samples hot-key estimates back through the ring,
// reporting the observed relative error.
//
//	counterd -cluster ... (×3) &
//	countertool bench-cluster -nodes http://localhost:8347 -events 1000000
//	countertool bench-cluster -nodes http://localhost:8347 -transport wire
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func benchClusterMain(args []string) {
	fs := flag.NewFlagSet("bench-cluster", flag.ExitOnError)
	var (
		nodes      = fs.String("nodes", "http://localhost:8347", "comma-separated seed node base URLs")
		events     = fs.Int("events", 1_000_000, "total events to send")
		goroutines = fs.Int("goroutines", 8, "concurrent client goroutines")
		batch      = fs.Int("batch", 1024, "keys per POST /inc request")
		zipfS      = fs.Float64("zipf", 1.05, "Zipf exponent of the key popularity law")
		transport  = fs.String("transport", client.TransportAuto, "ingest transport: auto, http, or wire")
		seed       = fs.Uint64("seed", 42, "key stream seed")
		verify     = fs.Bool("verify", true, "tally local truth and report hot-key estimate error (meaningful on a fresh cluster: pre-existing counts read as overcount)")
		hotMin     = fs.Uint64("hot", 1000, "minimum true count for a key to be error-checked")
	)
	fs.Parse(args)
	seeds := strings.Split(*nodes, ",")

	probe, err := client.New(client.Config{Seeds: seeds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-cluster: %v\n", err)
		os.Exit(1)
	}
	n := probe.N()
	ring := probe.Ring()
	fmt.Printf("cluster: %d keys, %d partitions, rf %d, members %v\n",
		n, probe.Partitions(), ring.RF(), ring.Members())

	perG := (*events + *goroutines - 1) / *goroutines
	truths := make([][]uint64, *goroutines)
	clientStats := make([]client.Stats, *goroutines)
	errs := make([]error, *goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{Seeds: seeds, BatchSize: *batch, Transport: *transport})
			if err != nil {
				errs[g] = err
				return
			}
			defer func() { clientStats[g] = c.Stats() }()
			truth := make([]uint64, n)
			truths[g] = truth
			src := stream.NewZipf(uint64(n), *zipfS, xrand.NewSeeded(*seed+uint64(1000*g+1)))
			for i := 0; i < perG; i++ {
				k := int(src.Next())
				if err := c.Inc(k); err != nil {
					errs[g] = err
					return
				}
				truth[k]++
			}
			errs[g] = c.Flush()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for g, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-cluster: goroutine %d: %v\n", g, err)
			os.Exit(1)
		}
	}
	total := perG * *goroutines
	fmt.Printf("acked %d events in %v — %.0f events/s (%d goroutines × %d-key batches, %s transport)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), *goroutines, *batch, *transport)

	// Routing-health tally across the per-goroutine clients: how much ring
	// churn and transport recovery the run absorbed to deliver that rate.
	var cs client.Stats
	for _, s := range clientStats {
		cs.RingRefreshes += s.RingRefreshes
		cs.MisdirectedRetries += s.MisdirectedRetries
		cs.Failovers += s.Failovers
		cs.HTTPFallbacks += s.HTTPFallbacks
		cs.WireDials += s.WireDials
		cs.WireRedials += s.WireRedials
	}
	fmt.Printf("client: %d ring refreshes, %d 421 retries, %d failovers, %d http fallbacks, %d wire dials (%d redials)\n",
		cs.RingRefreshes, cs.MisdirectedRetries, cs.Failovers, cs.HTTPFallbacks, cs.WireDials, cs.WireRedials)

	if !*verify {
		return
	}
	// Give replication a moment to settle, then sample hot keys through the
	// ring and compare with the locally tallied truth.
	time.Sleep(500 * time.Millisecond)
	truth := make([]uint64, n)
	for _, tg := range truths {
		for k, c := range tg {
			truth[k] += c
		}
	}
	var errSummary stats.Summary
	checked := 0
	for k, tr := range truth {
		if tr < *hotMin {
			continue
		}
		res, err := probe.Query(context.Background(), client.QueryOptions{Kind: client.KindEstimate, Key: k})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-cluster: estimate key %d: %v\n", k, err)
			os.Exit(1)
		}
		errSummary.Add(stats.SignedRelativeError(res.Estimate, float64(tr)))
		checked++
	}
	if checked == 0 {
		fmt.Printf("verify: no keys reached %d true events; lower -hot\n", *hotMin)
		return
	}
	fmt.Printf("verify: %d hot keys — relative error mean %+.2f%% std %.2f%% worst %+.2f%%\n",
		checked, 100*errSummary.Mean(), 100*errSummary.StdDev(), 100*maxAbs(errSummary))
}
