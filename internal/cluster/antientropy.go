package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Anti-entropy: the repair path that makes replicas converge no matter what
// the write path dropped (a crashed coordinator's unsent outbox, a hint log
// lost to power failure, a partition that healed). The exchange unit is a
// snapcodec-compressed partition snapshot, and the join is the
// register-wise maximum (Store.MergeMax) — correct between replicas because
// every replica of a partition applies the same logical increment stream
// (the write path delivers each acknowledged batch to every replica at
// least once) and registers are monotone under increments: the bigger
// register is simply the replica that has absorbed more of the stream. Max
// is idempotent, so repeated rounds settle at identical registers. Remark
// 2.4's distributional merge is NOT used here — between same-stream
// replicas it would double-count; it remains the right join for disjoint
// streams (POST /merge).
//
// When to merge matters as much as how. The replicas absorb the shared
// stream with independent randomness, so at any instant their registers are
// two slightly-diverged random walks; taking the max of in-flight replicas
// keeps the upper envelope of that noise, and doing so every round under
// active load ratchets the registers upward — a measurable estimate bias
// that grows with exchange frequency (see TestClusterReplicationConverges,
// which caught exactly this). So a round only merges a partition when one
// of two gates opens:
//
//  1. Repair: a peer replica has just come back from suspect/dead (or this
//     node just started). Its registers may be missing whole stretches of
//     the stream; merging now is worth a one-time sliver of max-bias.
//  2. Quiescent divergence: the partition has seen no local writes for a
//     full round AND the replicas' register hashes differ. No writes means
//     no replication in flight, so a hash mismatch is real divergence, and
//     merging static registers is ratchet-free (once converged the hashes
//     match and rounds become pure hash checks).
//
// In a healthy, loaded cluster anti-entropy therefore costs one tiny hash
// exchange per partition per round and adds zero bias; the replication
// outbox is what keeps replicas tracking the stream.
//
// Both gates additionally require the PAIR to be op-quiescent: neither side
// may hold queued (undrained) batches for the other. State transfer and op
// replay deliver the same history through different channels — if a node
// max-joins a peer's registers and the peer's hint drain then re-applies
// the same events as increments, they are counted twice (measured at
// 10–20% inflation in the crash/recovery test when repair raced hinted
// handoff). Ordering ops-before-state per pair closes the overlap; the
// residue is at most one in-flight drain window of a third replica.
func (n *Node) antiEntropyRound() {
	ring := n.ring.Load()
	// Ring flips hand off through the rebalancer, not anti-entropy. Until
	// this node has reconciled the current ring (pending/frozen partitions
	// durably classified), its "owned" set is provisional — a round now
	// could push a cold newly-owned partition to a peer as if it were warm.
	if !n.reb.reconciledTo(ring.Version()) {
		return
	}
	parts := n.st.Partitions()
	n.aeRounds.Inc()
	round := n.aeRounds.Value()
	n.noteRecoveries()
	// pairSafe memoizes per-round whether a pair is op-quiescent.
	safeCache := map[string]bool{}
	pairSafe := func(peer string) bool {
		if v, ok := safeCache[peer]; ok {
			return v
		}
		v := n.pairQuiesced(peer)
		safeCache[peer] = v
		return v
	}
	for p := 0; p < parts; p++ {
		reps := ring.Replicas(p)
		mine := false
		var peers []string
		for _, r := range reps {
			if r == n.cfg.Self {
				mine = true
			} else if m, ok := n.mem.State(r); ok && m.State == StateAlive {
				peers = append(peers, r)
			}
		}
		if !mine || len(peers) == 0 {
			continue
		}
		if n.st.PendingPartition(p) {
			// Awaiting a rebalance install: a max-join of a partial pull
			// would commit a merge record and clear the pending mark with
			// incomplete data. The rebalancer is the only transfer path for
			// pending partitions.
			continue
		}

		// Gate 1: repair every freshly-recovered peer replica — once the
		// pair's hint queues are empty in both directions.
		repaired := false
		for _, peer := range peers {
			if !n.needsRepair[peer] {
				continue
			}
			if !pairSafe(peer) {
				// Ops still in flight between us: let the drains finish and
				// retry the repair next round.
				n.repairFailed[peer] = true
				continue
			}
			if err := n.syncPartition(p, peer); err != nil {
				n.repairFailed[peer] = true
				n.cfg.Logf("cluster: repair partition %d with %s: %v", p, peer, err)
			}
			repaired = true
		}
		if repaired {
			n.lastPartVer[p] = n.st.PartitionVersion(p)
			continue
		}

		// Gate 2: quiescent divergence with the round's rotating peer.
		ver := n.st.PartitionVersion(p)
		if ver != n.lastPartVer[p] {
			n.lastPartVer[p] = ver // writes in flight; check again next round
			continue
		}
		peer := peers[(int(round)+p)%len(peers)]
		if !pairSafe(peer) {
			continue // the peer's queued ops for us would double-count
		}
		same, err := n.hashMatches(p, peer)
		if err != nil {
			n.cfg.Logf("cluster: anti-entropy hash of partition %d from %s: %v", p, peer, err)
			continue
		}
		if same {
			continue
		}
		if err := n.syncPartition(p, peer); err != nil {
			n.cfg.Logf("cluster: anti-entropy partition %d with %s: %v", p, peer, err)
		}
		n.lastPartVer[p] = n.st.PartitionVersion(p)
	}
	// A peer is fully repaired once a round touched every shared partition
	// without a failure.
	for peer := range n.needsRepair {
		if !n.repairFailed[peer] {
			delete(n.needsRepair, peer)
		}
		delete(n.repairFailed, peer)
	}
}

// noteRecoveries diffs member states against the previous round and marks
// peers that returned to life (or appeared) as needing repair. Runs only on
// the anti-entropy goroutine; the maps are loop-local state.
func (n *Node) noteRecoveries() {
	for _, m := range n.mem.Snapshot() {
		if m.ID == n.cfg.Self {
			continue
		}
		prev, known := n.prevStates[m.ID]
		if m.State == StateAlive && (!known || prev != StateAlive) {
			n.needsRepair[m.ID] = true
		}
		n.prevStates[m.ID] = m.State
	}
}

// pairQuiesced reports whether no replication ops are queued between this
// node and peer in either direction: our outbox for them is empty, and
// their /cluster/info shows an empty outbox for us. Merging state while
// either queue is non-empty would count the queued events twice (once as
// transferred registers, once when the drain applies them).
func (n *Node) pairQuiesced(peer string) bool {
	n.obMu.Lock()
	o := n.outboxes[peer]
	n.obMu.Unlock()
	if o != nil && o.pending() > 0 {
		return false
	}
	resp, err := n.client.Get(peer + "/cluster/info")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	var info Info
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return false
	}
	return info.OutboxPending[n.cfg.Self] == 0
}

// hashMatches compares the local register hash of partition p with peer's.
func (n *Node) hashMatches(p int, peer string) (bool, error) {
	local, err := n.st.PartitionHash(p)
	if err != nil {
		return false, err
	}
	resp, err := n.client.Get(fmt.Sprintf("%s/cluster/phash/%d", peer, p))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var reply struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&reply); err != nil {
		return false, err
	}
	return reply.Hash == fmt.Sprintf("%016x", local), nil
}

// syncPartition runs one pull-push max-join exchange of partition p with
// peer.
func (n *Node) syncPartition(p int, peer string) error {
	// Pull the peer's view and fold it in.
	resp, err := n.client.Get(fmt.Sprintf("%s/snapshot/%d", peer, p))
	if err != nil {
		return err
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pull: status %d", resp.StatusCode)
	}
	if err := n.st.MergeMax(blob); err != nil {
		return fmt.Errorf("pull merge: %w", err)
	}

	// Push our (now joined) view back so one exchange converges both sides.
	var buf bytes.Buffer
	if err := n.st.PartitionSnapshotTo(&buf, p); err != nil {
		return err
	}
	pushResp, err := n.client.Post(peer+"/mergemax", "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer pushResp.Body.Close()
	if pushResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(pushResp.Body, 512))
		return fmt.Errorf("push: status %d: %s", pushResp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, pushResp.Body)
	return nil
}
