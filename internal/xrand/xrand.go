// Package xrand provides the deterministic pseudo-random substrate used by
// every counter in this repository.
//
// The paper (Nelson & Yu, "Optimal bounds for approximate counting") assumes
// a source of ideal fair coins. We substitute xoshiro256++ seeded through
// SplitMix64, which is more than adequate statistically for the Bernoulli and
// geometric draws the counters need, and — unlike crypto randomness — makes
// every experiment in this repository exactly reproducible from a seed.
//
// The package offers three layers:
//
//   - Source: a raw 64-bit generator (xoshiro256++), plus a CountingSource
//     wrapper that meters consumed random bits (several experiments report
//     randomness consumption alongside state size).
//   - Rand: convenience draws (Float64, Uint64n, Perm, ...).
//   - Exact coin primitives used by the counters: fixed-point Bernoulli(p),
//     power-of-two Bernoulli via leading-zero counting, the literal
//     fair-coin-AND procedure of the paper's Remark 2.2, and geometric
//     samplers (used for distribution-preserving skip-ahead).
package xrand

import (
	"math"
	"math/bits"
)

// Source is a raw stream of 64-bit pseudo-random words.
type Source interface {
	Uint64() uint64
}

// SplitMix64 is the seeding generator recommended by the xoshiro authors.
// It is a valid Source in its own right (period 2^64) and is used to expand
// a single 64-bit seed into the 256-bit xoshiro state.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64-bit word of the SplitMix64 stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256++ generator of Blackman and Vigna.
// Period 2^256 − 1; passes BigCrush. Not safe for concurrent use; callers
// that share a generator across goroutines must synchronize externally (the
// counter bank does exactly that). The state lives in four scalar fields
// rather than an array so Uint64 fits the compiler's inlining budget — it
// is the innermost call of every counter increment.
type Xoshiro256 struct {
	s0, s1, s2, s3 uint64
}

// New returns a Xoshiro256 seeded deterministically from seed via SplitMix64.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	x.s0 = sm.Uint64()
	x.s1 = sm.Uint64()
	x.s2 = sm.Uint64()
	x.s3 = sm.Uint64()
	// An all-zero state is a fixed point; SplitMix64 cannot emit four zero
	// words in a row from any seed, but guard anyway.
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 0x9e3779b97f4a7c15
	}
	return &x
}

// Uint64 returns the next 64-bit word of the xoshiro256++ stream.
func (x *Xoshiro256) Uint64() uint64 {
	s0, s1, s3 := x.s0, x.s1, x.s3
	result := bits.RotateLeft64(s0+s3, 23) + s0
	t := s1 << 17
	s2 := x.s2 ^ s0
	s3 ^= s1
	x.s1 = s1 ^ s2
	x.s0 = s0 ^ s3
	x.s2 = s2 ^ t
	x.s3 = bits.RotateLeft64(s3, 45)
	return result
}

// State returns the generator's full 256-bit state as four words. Together
// with SetState it makes a generator checkpointable: a counter bank whose
// registers are snapshotted alongside its generator state replays the exact
// same future draw sequence after a restore (see internal/snapcodec and
// internal/wal, which persist both).
func (x *Xoshiro256) State() [4]uint64 {
	return [4]uint64{x.s0, x.s1, x.s2, x.s3}
}

// SetState overwrites the generator state with one previously captured by
// State. The all-zero state is a fixed point of xoshiro256++ and is rejected
// by substituting the same non-zero guard word New uses.
func (x *Xoshiro256) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	x.s0, x.s1, x.s2, x.s3 = s[0], s[1], s[2], s[3]
}

// Jump advances the generator by 2^128 steps, equivalent to that many calls
// to Uint64. It is used to derive non-overlapping streams for parallel
// trials from a single seed.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s0
				s1 ^= x.s1
				s2 ^= x.s2
				s3 ^= x.s3
			}
			x.Uint64()
		}
	}
	x.s0, x.s1, x.s2, x.s3 = s0, s1, s2, s3
}

// CountingSource wraps a Source and meters how many 64-bit words (and hence
// random bits) have been consumed. The counters in this repository draw all
// randomness through their Source, so wrapping with a CountingSource gives an
// exact account of randomness consumption per operation.
type CountingSource struct {
	inner Source
	words uint64
}

// NewCounting returns a CountingSource wrapping inner.
func NewCounting(inner Source) *CountingSource { return &CountingSource{inner: inner} }

// Uint64 forwards to the wrapped Source and increments the word meter.
func (c *CountingSource) Uint64() uint64 {
	c.words++
	return c.inner.Uint64()
}

// Words reports the number of 64-bit words drawn so far.
func (c *CountingSource) Words() uint64 { return c.words }

// Bits reports the number of random bits drawn so far (64 per word).
func (c *CountingSource) Bits() uint64 { return c.words * 64 }

// Reset zeroes the meter without disturbing the wrapped Source.
func (c *CountingSource) Reset() { c.words = 0 }

// Rand bundles a Source with the derived distributions the counters and
// experiment harnesses need.
type Rand struct {
	src Source
}

// NewRand returns a Rand drawing from src.
func NewRand(src Source) *Rand { return &Rand{src: src} }

// NewSeeded is shorthand for NewRand(New(seed)).
func NewSeeded(seed uint64) *Rand { return NewRand(New(seed)) }

// Source returns the underlying Source.
func (r *Rand) Source() Source { return r.src }

// Uint64 returns a uniform 64-bit word.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) * 0x1.0p-53
}

// Float64Open returns a uniform float64 in (0, 1); it never returns 0, which
// makes it safe as the U in inversion formulas involving log(U).
func (r *Rand) Float64Open() float64 {
	for {
		f := r.Float64()
		if f != 0 {
			return f
		}
	}
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.src.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Range returns a uniform uint64 in [lo, hi] inclusive. It panics if lo > hi.
func (r *Rand) Range(lo, hi uint64) uint64 {
	if lo > hi {
		panic("xrand: Range with lo > hi")
	}
	return lo + r.Uint64n(hi-lo+1)
}

// Perm returns a uniform random permutation of {0, ..., n-1}.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bernoulli returns true with probability p (clamped to [0, 1]). The draw
// uses a 53-bit uniform, which is exact for any p representable with 53
// fractional bits and within 2^-53 otherwise — far below every tolerance in
// this repository.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliFixed returns true with probability pFixed / 2^64 exactly.
// Counters that round probabilities to dyadic rationals use this form.
func (r *Rand) BernoulliFixed(pFixed uint64) bool {
	return r.src.Uint64() < pFixed
}

// BernoulliRational returns true with probability exactly num/den, using
// one unbiased Uint64n draw — no floating point anywhere. It panics if
// den == 0; num ≥ den always returns true.
func (r *Rand) BernoulliRational(num, den uint64) bool {
	if den == 0 {
		panic("xrand: BernoulliRational with zero denominator")
	}
	if num >= den {
		return true
	}
	return r.Uint64n(den) < num
}

// BernoulliPow2 returns true with probability exactly 2^-t. For t ≤ 64 it
// inspects t bits of one word; larger t consults additional words. t == 0
// always returns true.
func (r *Rand) BernoulliPow2(t uint) bool {
	for t > 64 {
		if r.src.Uint64() != 0 {
			return false
		}
		t -= 64
	}
	if t == 0 {
		return true
	}
	return r.src.Uint64()>>(64-t) == 0
}

// CoinANDPow2 implements, literally, the procedure from the paper's Remark
// 2.2 for sampling Bernoulli(2^-t): flip a fair coin t times and return true
// iff all flips were heads, maintaining only a 1-bit AND and a counter of
// flips made so far. It returns the outcome along with the number of state
// bits the procedure needed (1 + ⌈log2(t+1)⌉), which experiments report to
// validate the Remark's space claim. Semantically identical to
// BernoulliPow2; kept separate so the paper's construction is itself
// testable.
func (r *Rand) CoinANDPow2(t uint) (ok bool, stateBits int) {
	and := true
	var flips uint
	for flips = 0; flips < t; flips++ {
		heads := r.src.Uint64()&1 == 1
		and = and && heads
		if !and {
			// A real implementation may stop early; the state bound is
			// unchanged since the flip counter still fits the same width.
			flips++
			break
		}
	}
	counterBits := bits.Len(t)
	return and, 1 + counterBits
}

// Geometric returns the number of independent Bernoulli(p) trials up to and
// including the first success; the support is {1, 2, ...}. It uses the exact
// inversion formula ⌊ln U / ln(1−p)⌋ + 1 with U ∈ (0,1). Results larger than
// math.MaxUint64/2 saturate (that regime is unreachable for the parameters
// used anywhere in this repository, but saturation keeps arithmetic safe).
// It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) uint64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0, 1]")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64Open()
	// ln(1-p) via Log1p for accuracy at tiny p.
	g := math.Floor(math.Log(u)/math.Log1p(-p)) + 1
	if g >= math.MaxUint64/2 {
		return math.MaxUint64 / 2
	}
	if g < 1 {
		return 1
	}
	return uint64(g)
}

// GeometricPow2 returns a geometric draw with success probability 2^-t,
// sampled exactly by scanning the raw bit stream for the first run of t head
// bits... more precisely, by counting how many t-bit all-zero blocks precede
// the first non-zero block, then locating the success inside it. For t == 0
// it returns 1. Exact (no floating point) and used by tests to cross-check
// Geometric.
func (r *Rand) GeometricPow2(t uint) uint64 {
	if t == 0 {
		return 1
	}
	if t > 62 {
		// Fall back to the float path; exact bit-block scanning would need
		// astronomically many words in expectation anyway.
		return r.Geometric(math.Pow(2, -float64(t)))
	}
	var failures uint64
	for {
		block := r.src.Uint64() >> (64 - t)
		if block == 0 {
			return failures + 1
		}
		failures++
		if failures >= math.MaxUint64/2 {
			return math.MaxUint64 / 2
		}
	}
}

// Exponential returns an Exp(1) draw via inversion.
func (r *Rand) Exponential() float64 {
	return -math.Log(r.Float64Open())
}

// Normal returns a standard normal draw via the Box–Muller transform (one
// value per call; the partner variate is discarded for simplicity — the
// experiment harnesses are not randomness-constrained).
func (r *Rand) Normal() float64 {
	u := r.Float64Open()
	v := r.Float64Open()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
