// Command fig1 reproduces Figure 1 of the paper: the empirical CDFs of the
// relative errors of the Morris counter and of the simplified Algorithm 1
// (Csűrös floating-point counter), both constrained to the same state
// budget. It prints the percentile table and, with -csv, the raw per-trial
// error series suitable for plotting the exact curves.
//
// Paper settings (the defaults): 5000 trials per algorithm, 17 bits,
// N ~ Uniform[500000, 999999].
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		trials = flag.Int("trials", 5000, "trials per algorithm")
		bits   = flag.Int("bits", 17, "state bits per counter")
		lowN   = flag.Uint64("low", 500000, "smallest random total")
		highN  = flag.Uint64("high", 999999, "largest random total")
		seed   = flag.Uint64("seed", 42, "PRNG seed")
		csv    = flag.Bool("csv", false, "emit per-trial relative errors as CSV")
		points = flag.Int("points", 20, "ECDF percentile rows in the table")
	)
	flag.Parse()

	res := experiments.Fig1(experiments.Fig1Config{
		Trials: *trials,
		Bits:   *bits,
		LowN:   *lowN,
		HighN:  *highN,
		Seed:   *seed,
		Points: *points,
	})
	if *csv {
		fmt.Println("trial,morris_rel_err,csuros_rel_err")
		for i := range res.MorrisErrors {
			fmt.Fprintf(os.Stdout, "%d,%.8f,%.8f\n", i, res.MorrisErrors[i], res.CsurosErrors[i])
		}
		return
	}
	res.Table.Render(os.Stdout)
}
