package engine

import (
	"bytes"
	"testing"

	"repro/internal/bank"
	"repro/internal/shardbank"
	"repro/internal/snapcodec"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func zipfKeys(n, events int, s float64, seed uint64) []int {
	src := stream.NewZipf(uint64(n), s, xrand.NewSeeded(seed))
	out := make([]int, events)
	for i := range out {
		out[i] = int(src.Next())
	}
	return out
}

func batches(keys []int, size int) [][]int {
	var out [][]int
	for lo := 0; lo < len(keys); lo += size {
		hi := min(lo+size, len(keys))
		out = append(out, keys[lo:hi])
	}
	return out
}

// The bank engine is behavior-pinned: its snapshots must be byte-identical
// to encoding the underlying shardbank state directly (the pre-engine
// store's exact construction), whole-bank and per-partition, with and
// without generator state.
func TestBankEngineSnapshotBytesPinned(t *testing.T) {
	const n, shards, seed = 1500, 8, 42
	alg := bank.NewMorrisAlg(0.01, 12)
	e := NewBank(shardbank.New(n, alg, shards, seed))
	ref := shardbank.New(n, alg, shards, seed)
	for _, b := range batches(zipfKeys(n, 20_000, 1.1, 7), 512) {
		e.ApplyBatch(b)
		ref.IncrementBatch(b)
	}

	encode := func(s *snapcodec.Snapshot) []byte {
		t.Helper()
		data, err := snapcodec.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// Whole bank, with rng state (the checkpoint image).
	state := ref.ExportState()
	want := &snapcodec.Snapshot{N: n, Shards: shards, Seed: seed,
		Registers: state.Registers, RNG: state.RNG}
	if err := want.SetAlg(alg); err != nil {
		t.Fatal(err)
	}
	got, err := e.Snapshot(0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(got), encode(want)) {
		t.Fatal("checkpoint snapshot bytes diverge from direct shardbank encoding")
	}
	// Whole bank, registers only (the GET /snapshot payload).
	want.RNG = nil
	got, err = e.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(got), encode(want)) {
		t.Fatal("serving snapshot bytes diverge from direct shardbank encoding")
	}
	// One partition (the anti-entropy exchange unit).
	const parts = 4
	lo, hi := snapcodec.PartitionRange(n, parts, 2)
	regs, err := ref.ExportRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	wantP := &snapcodec.Snapshot{N: n, Shards: shards, Seed: seed,
		Partition: 2, Parts: parts, Registers: regs}
	if err := wantP.SetAlg(alg); err != nil {
		t.Fatal(err)
	}
	gotP, err := e.Snapshot(2, parts, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(gotP), encode(wantP)) {
		t.Fatal("partition snapshot bytes diverge from direct shardbank encoding")
	}
}

// FromSnapshot round-trips both engines: restore from a checkpoint image,
// absorb the same suffix as the original, and land on identical snapshots.
func TestFromSnapshotRoundTrip(t *testing.T) {
	const n = 2000
	for _, tc := range []struct {
		name string
		mk   func() Engine
	}{
		{"bank", func() Engine {
			return NewBank(shardbank.New(n, bank.NewMorrisAlg(0.02, 12), 8, 1))
		}},
		{"topk", func() Engine {
			e, err := NewTopK(n, bank.NewMorrisAlg(0.02, 12), 8, 32, 1)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"distinct", func() Engine {
			e, err := NewDistinct(n, 8, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"distinct-window", func() Engine {
			e, err := NewDistinctWindow(n, 8, 10, 4, int64(0), 1)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"f2", func() Engine {
			e, err := NewF2(n, 8, 5, 16, 1)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"f2-window", func() Engine {
			e, err := NewF2Window(n, 8, 5, 16, 4, int64(0), 1)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			history := batches(zipfKeys(n, 30_000, 1.1, 3), 777)
			half := len(history) / 2
			for _, b := range history[:half] {
				orig.ApplyBatch(b)
			}
			ckpt, err := orig.Snapshot(0, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			// Encode/decode so the restore exercises the real wire format.
			blob, err := snapcodec.Encode(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := snapcodec.Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := FromSnapshot(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Kind() != orig.Kind() || restored.Len() != n {
				t.Fatalf("restored %s/%d", restored.Kind(), restored.Len())
			}
			for _, b := range history[half:] {
				orig.ApplyBatch(b)
				restored.ApplyBatch(b)
			}
			a, err := orig.Snapshot(0, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := restored.Snapshot(0, 0, true)
			if err != nil {
				t.Fatal(err)
			}
			ba, _ := snapcodec.Encode(a)
			bb, _ := snapcodec.Encode(b2)
			if !bytes.Equal(ba, bb) {
				t.Fatal("restored engine diverged from the original on the same suffix")
			}
			ha, err := orig.HashRange(0, n)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := restored.HashRange(0, n)
			if err != nil {
				t.Fatal(err)
			}
			if ha != hb {
				t.Fatal("hash mismatch after identical history")
			}
		})
	}
}

// The top-k engine recovers the true heavy hitters of a Zipf(1.1) stream.
func TestTopKEngineRecall(t *testing.T) {
	const n, events = 50_000, 400_000
	e, err := NewTopK(n, bank.NewMorrisAlg(0.01, 14), 16, 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	keys := zipfKeys(n, events, 1.4, 5)
	truth := make(map[int]int, n)
	for _, k := range keys {
		truth[k]++
	}
	for _, b := range batches(keys, 4096) {
		e.ApplyBatch(b)
	}
	top, err := e.TopK(10, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("top-10 returned %d entries", len(top))
	}
	// The true top 5 must all be reported in the top 10 (Morris noise can
	// reorder close calls further down the ranking).
	type kv struct{ k, c int }
	var all []kv
	for k, c := range truth {
		all = append(all, kv{k, c})
	}
	reported := make(map[int]bool, len(top))
	for _, en := range top {
		reported[en.Key] = true
	}
	for rank := 0; rank < 5; rank++ {
		best := -1
		for i, e := range all {
			if best < 0 || e.c > all[best].c || (e.c == all[best].c && e.k < all[best].k) {
				best = i
			}
		}
		if !reported[all[best].k] {
			t.Fatalf("true rank-%d key %d (count %d) missing from top-10 %v",
				rank, all[best].k, all[best].c, top)
		}
		all[best], all[len(all)-1] = all[len(all)-1], all[best]
		all = all[:len(all)-1]
	}
}

// Partition snapshots exchange and max-join: after a pull-push round the
// replicas' partition hashes match; a repeated round changes nothing.
func TestTopKEngineMergeMaxConverges(t *testing.T) {
	const n, parts = 4000, 8
	alg := bank.NewMorrisAlg(0.02, 12)
	mk := func(seed uint64) *TopKEngine {
		e, err := NewTopK(n, alg, parts, 24, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(1), mk(2) // different rng universes, same logical stream
	keys := zipfKeys(n, 60_000, 1.2, 11)
	for _, batch := range batches(keys, 512) {
		a.ApplyBatch(batch)
		b.ApplyBatch(batch)
	}
	exchange := func(p int) {
		sa, err := a.Snapshot(p, parts, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.CheckPeer(sa, false); err != nil {
			t.Fatalf("checkpeer: %v", err)
		}
		if err := b.MergeMax(sa); err != nil {
			t.Fatal(err)
		}
		sb, err := b.Snapshot(p, parts, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MergeMax(sb); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < parts; p++ {
		exchange(p)
	}
	hashes := func() ([]uint64, []uint64) {
		var ha, hb []uint64
		for p := 0; p < parts; p++ {
			lo, hi := snapcodec.PartitionRange(n, parts, p)
			va, err := a.HashRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			vb, err := b.HashRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			ha = append(ha, va)
			hb = append(hb, vb)
		}
		return ha, hb
	}
	ha, hb := hashes()
	for p := range ha {
		if ha[p] != hb[p] {
			t.Fatalf("partition %d hashes diverge after exchange", p)
		}
	}
	before := append([]uint64(nil), ha...)
	for p := 0; p < parts; p++ {
		exchange(p) // idempotence
	}
	ha, hb = hashes()
	for p := range ha {
		if ha[p] != before[p] || hb[p] != before[p] {
			t.Fatalf("partition %d changed on a repeated max-join round", p)
		}
	}
}

// CheckPeer rejects cross-engine, cross-shape, and hostile payloads — the
// validate-before-stage contract.
func TestTopKEngineCheckPeerRejects(t *testing.T) {
	alg := bank.NewMorrisAlg(0.02, 12)
	e, err := NewTopK(1000, alg, 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A bank snapshot into a topk engine (and vice versa).
	bankSnap := &snapcodec.Snapshot{N: 1000, Shards: 4, Seed: 1,
		Registers: make([]uint64, 1000)}
	if err := bankSnap.SetAlg(alg); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckPeer(bankSnap, false); err == nil {
		t.Fatal("bank snapshot accepted by topk engine")
	}
	be := NewBank(shardbank.New(1000, alg, 4, 1))
	tkSnap, err := e.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.CheckPeer(tkSnap, false); err == nil {
		t.Fatal("topk snapshot accepted by bank engine")
	}
	// Shape mismatch.
	other, err := NewTopK(1000, alg, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap8, err := other.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CheckPeer(snap8, false); err == nil {
		t.Fatal("8-shard snapshot accepted by 4-shard engine")
	}
	// Disjoint merge needs a MergeAlgorithm.
	ex, err := NewTopK(1000, bank.NewExactAlg(12), 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	exSnap, err := ex.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.CheckPeer(exSnap, true); err == nil {
		t.Fatal("disjoint merge accepted on exact registers")
	}
	if err := ex.CheckPeer(exSnap, false); err != nil {
		t.Fatalf("max join should not need merge support: %v", err)
	}
	// A payload tracking a key outside its shard's range.
	bad, err := e.Snapshot(1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	pl := topkPayload{cap: 16, shards: []topkShardState{{
		index: 1, items: []uint64{10}, regs: []uint64{3}, n: 1,
	}}}
	bad.Payload = pl.encode() // key 10 lives in shard 0, not 1
	if err := e.CheckPeer(bad, false); err == nil {
		t.Fatal("out-of-range slot item accepted")
	}
}

// A disjoint top-k merge unions slot tables per shard and sums stream
// lengths; merged registers dominate both inputs.
func TestTopKEngineMergeDisjoint(t *testing.T) {
	const n, parts = 2000, 4
	alg := bank.NewMorrisAlg(0.02, 12)
	a, err := NewTopK(n, alg, parts, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopK(n, alg, parts, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches(zipfKeys(n, 20_000, 1.3, 17), 512) {
		a.ApplyBatch(batch)
	}
	for _, batch := range batches(zipfKeys(n, 20_000, 1.3, 18), 512) {
		b.ApplyBatch(batch)
	}
	aTop, err := a.TopK(5, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := b.Snapshot(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckPeer(snapB, true); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(snapB); err != nil {
		t.Fatal(err)
	}
	// The hottest keys of both streams (Zipf: low keys) must still rank,
	// with estimates at least their pre-merge level.
	merged, err := a.TopK(5, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 || merged[0].Key != aTop[0].Key {
		t.Fatalf("merged top %v lost the dominant key %v", merged, aTop)
	}
	if merged[0].Estimate < aTop[0].Estimate {
		t.Fatalf("merged estimate %.0f below input %.0f", merged[0].Estimate, aTop[0].Estimate)
	}
}
