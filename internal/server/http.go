package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// maxMergeBody caps a POST /merge request body. A MaxRegisters-key snapshot
// compresses far below this; anything larger is abuse.
const maxMergeBody = 1 << 30

// maxIncBody caps a POST /inc request body (a MaxBatch batch of 7-digit
// keys in JSON is ~0.5 MB).
const maxIncBody = 16 << 20

// Handler returns the HTTP API over st. Every endpoint is served under the
// versioned /v1/ prefix; the unprefixed legacy paths remain as aliases for
// pre-/v1 clients and answer identically. Errors from any endpoint share
// one envelope: {"error": "message", "code": <http status>}.
//
//	POST /v1/inc            {"key": 5} or {"keys": [1, 2, 2, 7]} → {"applied": n}
//	GET  /v1/estimate/{key} → {"key": 5, "estimate": 1234.5}
//	GET  /v1/estimates      → {"estimates": [...]} (all n, key order)
//	GET  /v1/topk?k=10      → {"k":10, "topk":[{"key":3,"estimate":...},...]}
//	                          (&partition=p scopes to one partition — the unit
//	                          the smart client merges cluster-wide)
//
// On a window engine the three read endpoints additionally accept
// &window=5m (a duration, rounded up to whole buckets) or &window=3 (a
// bucket count) to scope the answer to the trailing window; other engines
// reject the parameter with a 400.
//
//	GET  /v1/distinct       → {"engine":"distinct", "estimate": 8412.7}
//	                          (distinct engine only; &partition=p scopes to
//	                          one partition — partitions tile disjoint key
//	                          ranges, so the smart client sums them
//	                          cluster-wide; &window= on the windowed flavor)
//	GET  /v1/f2             → {"engine":"f2", "estimate": 1.2e9} (f2 engine
//	                          only; same &partition= and &window= rules)
//
//	GET  /v1/snapshot       → snapcodec stream (application/octet-stream)
//	GET  /v1/snapshot/{p}   → one partition's snapcodec stream
//	POST /v1/merge          body = a peer snapshot → disjoint-stream join
//	                          (Remark 2.4 / SpaceSaving union)
//	POST /v1/mergemax       body = a peer snapshot → replica max join
//	GET  /v1/healthz        → Stats JSON (liveness: 200 whenever serving)
//	GET  /v1/readyz         → {"ready":true} or 503 (readiness: WAL
//	                          writable; the cluster layer shadows this
//	                          route to add ring-reconciliation)
//	GET  /v1/metrics        → Prometheus text exposition (also /metrics)
//
// Increments and merges are durable (WAL group commit) before the 200
// returns.
func Handler(st *Store) http.Handler {
	mux := http.NewServeMux()
	reg := st.Metrics()
	handle := func(method, path string, h http.HandlerFunc) {
		h = Instrument(reg, path, h)
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" "+path, h) // legacy unprefixed alias
	}
	handle("POST", "/inc", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key  *int  `json:"key"`
			Keys []int `json:"keys"`
		}
		body := io.LimitReader(r.Body, maxIncBody)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		keys := req.Keys
		if req.Key != nil {
			keys = append(keys, *req.Key)
		}
		if len(keys) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`need "key" or "keys"`))
			return
		}
		if err := st.Apply(keys); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, map[string]int{"applied": len(keys)})
	})

	handle("GET", "/estimate/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := strconv.Atoi(r.PathValue("key"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad key: %w", err))
			return
		}
		if q := r.URL.Query().Get("window"); q != "" {
			wn, err := st.ParseWindow(q)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			est, err := st.EstimateWindow(key, wn)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, map[string]any{"key": key, "estimate": est, "window": wn})
			return
		}
		est, err := st.Estimate(key)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, map[string]any{"key": key, "estimate": est})
	})

	handle("GET", "/estimates", func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("window"); q != "" {
			wn, err := st.ParseWindow(q)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			ests, err := st.EstimateAllWindow(wn)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			writeJSON(w, map[string]any{"estimates": ests, "window": wn})
			return
		}
		writeJSON(w, map[string]any{"estimates": st.EstimateAll()})
	})

	handle("GET", "/topk", func(w http.ResponseWriter, r *http.Request) {
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("need a positive integer k"))
			return
		}
		part := -1
		if p := r.URL.Query().Get("partition"); p != "" {
			if part, err = strconv.Atoi(p); err != nil || part < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition %q", p))
				return
			}
		}
		resp := map[string]any{"k": k, "engine": st.Engine().Kind()}
		var top []engine.Entry
		if q := r.URL.Query().Get("window"); q != "" {
			wn, werr := st.ParseWindow(q)
			if werr != nil {
				httpError(w, statusFor(werr), werr)
				return
			}
			top, err = st.TopKWindow(k, part, wn)
			resp["window"] = wn
		} else {
			top, err = st.TopK(k, part)
		}
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp["topk"] = top
		writeJSON(w, resp)
	})

	// Scalar range-estimate endpoints: /distinct answers the cardinality of
	// a distinct engine, /f2 the second moment of an f2 engine. The path
	// names the engine kind so a mis-aimed query (asking /distinct of an f2
	// node) is a 400, never a silently wrong number.
	scalarHandler := func(kind string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if st.Engine().Kind() != kind {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("engine %q serves no /%s queries", st.Engine().Kind(), kind))
				return
			}
			part := -1
			if p := r.URL.Query().Get("partition"); p != "" {
				var err error
				if part, err = strconv.Atoi(p); err != nil || part < 0 {
					httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition %q", p))
					return
				}
			}
			wn := 0
			if q := r.URL.Query().Get("window"); q != "" {
				var err error
				if wn, err = st.ParseWindow(q); err != nil {
					httpError(w, statusFor(err), err)
					return
				}
			}
			est, err := st.RangeEstimate(part, wn)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			resp := map[string]any{"engine": kind, "estimate": est}
			if part >= 0 {
				resp["partition"] = part
			}
			if wn > 0 {
				resp["window"] = wn
			}
			writeJSON(w, resp)
		}
	}
	handle("GET", "/distinct", scalarHandler(engine.KindDistinct))
	handle("GET", "/f2", scalarHandler(engine.KindF2))

	handle("GET", "/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := st.SnapshotTo(w); err != nil {
			// Headers are gone; all we can do is cut the stream so the
			// client's CRC check fails loudly.
			panic(http.ErrAbortHandler)
		}
	})

	handle("GET", "/snapshot/{partition}", func(w http.ResponseWriter, r *http.Request) {
		p, err := strconv.Atoi(r.PathValue("partition"))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		if p < 0 || p >= st.Partitions() {
			httpError(w, http.StatusNotFound,
				fmt.Errorf("partition %d out of [0, %d)", p, st.Partitions()))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := st.PartitionSnapshotTo(w, p); err != nil {
			panic(http.ErrAbortHandler)
		}
	})

	mergeHandler := func(apply func([]byte) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			blob, err := io.ReadAll(io.LimitReader(r.Body, maxMergeBody+1))
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
				return
			}
			if len(blob) > maxMergeBody {
				httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("snapshot exceeds %d bytes", maxMergeBody))
				return
			}
			if err := apply(blob); err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			writeJSON(w, map[string]any{"merged": true})
		}
	}
	handle("POST", "/merge", mergeHandler(st.Merge))
	handle("POST", "/mergemax", mergeHandler(st.MergeMax))

	// Liveness vs readiness: /healthz answers 200 whenever the process can
	// serve at all (its Stats payload is diagnostic, not a gate); /readyz
	// answers 200 only when the store can durably accept writes. The
	// cluster layer shadows /readyz to add ring-reconciliation — see
	// internal/cluster.Handler and docs/OPERATIONS.md.
	handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, st.Stats())
	})
	handle("GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		WriteReady(w, st.Ready())
	})
	// Prometheus text exposition of the store's registry (both /metrics
	// and /v1/metrics, like every endpoint).
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	return mux
}

// WriteReady renders a readiness verdict: 200 {"ready":true} on nil, 503
// with the unified error envelope plus "ready":false otherwise. Shared by
// the store-level and cluster-shadowed /readyz.
func WriteReady(w http.ResponseWriter, err error) {
	if err == nil {
		writeJSON(w, map[string]any{"ready": true})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"ready": false, "error": err.Error(), "code": http.StatusServiceUnavailable,
	})
}

// Instrument wraps h with per-endpoint request metrics on reg:
// counterd_http_request_seconds{endpoint} and
// counterd_http_requests_total{endpoint,code}. endpoint is the route
// pattern, not the raw URL, so cardinality stays bounded. The cluster
// layer reuses it for its /cluster/* routes.
func Instrument(reg *metrics.Registry, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if reg == nil {
		return h
	}
	lat := reg.HistogramVec("counterd_http_request_seconds",
		"HTTP request latency by route pattern.", metrics.LatencyBuckets, "endpoint").With(endpoint)
	codes := reg.CounterVec("counterd_http_requests_total",
		"HTTP requests by route pattern and status code.", "endpoint", "code")
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		lat.ObserveSince(t0)
		codes.With(endpoint, strconv.Itoa(sw.code)).Inc()
	}
}

// statusWriter records the status code a handler wrote. Flush is
// forwarded; nothing in this API hijacks or pushes.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// StatusFor maps store errors to HTTP codes: caller mistakes are 400,
// server faults (a poisoned WAL, a failed fsync) are 500 — a client with
// valid keys must not be told its request was malformed. The wire transport
// uses the same classifier for its ERROR frames, so both transports speak
// one error taxonomy.
func StatusFor(err error) int {
	if errors.Is(err, ErrBadInput) {
		return http.StatusBadRequest
	}
	if errors.Is(err, ErrConflict) {
		// An optimistic delta max-join lost its version race: the caller's
		// block diff is stale, not malformed. 409 tells it to re-diff.
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// statusFor is the internal spelling of StatusFor.
func statusFor(err error) int { return StatusFor(err) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// httpError writes the unified error envelope shared by every endpoint on
// both prefixes: {"error": "message", "code": <http status>}. The code rides
// in the body as well as the status line so clients reading through proxies
// (or wire ERROR frames, which reuse this vocabulary) see one shape.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "code": code})
}
