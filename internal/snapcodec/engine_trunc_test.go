package snapcodec

import (
	"bytes"
	"testing"

	"repro/internal/bank"
)

// A hostile engine header declaring a huge payload on a tiny body must
// fail on truncation without allocating the declared size.
func TestEnginePayloadTruncationBounded(t *testing.T) {
	s := &Snapshot{N: 100, Shards: 4, Seed: 1, Engine: "topk", Payload: []byte{1, 2, 3}}
	if err := s.SetAlg(bank.NewMorrisAlg(0.01, 12)); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	// Find the payload length byte (3) right after the engine name and
	// inflate it to MaxEnginePayload; the body stays tiny.
	idx := bytes.Index(data, append([]byte("topk"), 3))
	if idx < 0 {
		t.Fatal("payload length byte not found")
	}
	bad := append([]byte{}, data[:idx+4]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0x1F) // uvarint 2^26-ish
	bad = append(bad, data[idx+5:]...)
	if _, err := Decode(bad); err == nil {
		t.Fatal("truncated hostile payload accepted")
	}
}
