// Key-range operations for the sharded bank: exporting and merging a
// contiguous slice of the key space. These are the storage half of the
// cluster's partition exchange (internal/cluster): a partition is a key
// range [lo, hi), anti-entropy ships its registers as a compressed snapshot,
// and the receiver folds them in with one of two joins —
//
//   - MergeRange: the paper's Remark 2.4 merge, for counters that absorbed
//     DISJOINT streams (cross-cluster ingest, examples/distributed). The
//     merged register is distributed as one counter that saw both streams.
//   - MergeMaxRange: the register-wise maximum, for replicas that absorbed
//     the SAME logical stream. Registers are monotone under increments, so
//     max is an idempotent, commutative, associative join — repeated
//     anti-entropy rounds converge replicas to identical registers instead
//     of double-counting the shared stream the way Remark 2.4 would.
package shardbank

import (
	"fmt"

	"repro/internal/bank"
)

// checkRange validates a key range against the bank shape.
func (b *Bank) checkRange(lo, hi int) error {
	if lo < 0 || hi > b.n || lo > hi {
		return fmt.Errorf("shardbank: key range [%d, %d) outside [0, %d)", lo, hi, b.n)
	}
	return nil
}

// firstInShard returns the smallest key ≥ lo that lives in shard si.
func (b *Bank) firstInShard(lo, si int) int {
	p := len(b.shards)
	return lo + (si-lo%p+p)&int(b.mask)
}

// ExportRange returns the registers of keys [lo, hi) in key order. Each
// shard is read under its lock, so the result is consistent per shard but
// not a global point-in-time cut (registers are monotone under increments,
// which is all the cluster's max-join anti-entropy needs); use ExportState
// for a globally consistent image.
func (b *Bank) ExportRange(lo, hi int) ([]uint64, error) {
	if err := b.checkRange(lo, hi); err != nil {
		return nil, err
	}
	out := make([]uint64, hi-lo)
	if lo == hi {
		return out, nil
	}
	p := len(b.shards)
	for si, s := range b.shards {
		first := b.firstInShard(lo, si)
		if first >= hi {
			continue
		}
		s.mu.Lock()
		for k := first; k < hi; k += p {
			out[k-lo] = s.arr.Get(k >> b.shift)
		}
		s.mu.Unlock()
	}
	return out, nil
}

// MergeMaxRange folds regs (the registers of keys [lo, lo+len(regs)) from a
// replica of identical shape) into the bank as a register-wise maximum. It
// draws no randomness and is idempotent, so replicas exchanging ranges in
// both directions converge to identical registers. On a validation error
// the bank is unmodified.
func (b *Bank) MergeMaxRange(lo int, regs []uint64) error {
	hi := lo + len(regs)
	if err := b.checkRange(lo, hi); err != nil {
		return err
	}
	maxReg := ^uint64(0) >> uint(64-b.alg.Width())
	for i, v := range regs {
		if v > maxReg {
			return fmt.Errorf("shardbank: merge register %d = %d exceeds %d-bit width",
				lo+i, v, b.alg.Width())
		}
	}
	p := len(b.shards)
	for si, s := range b.shards {
		first := b.firstInShard(lo, si)
		if first >= hi {
			continue
		}
		changed := false
		s.mu.Lock()
		for k := first; k < hi; k += p {
			local := k >> b.shift
			if v := regs[k-lo]; v > s.arr.Get(local) {
				s.arr.Set(local, v)
				b.markDirty(k)
				changed = true
			}
		}
		if changed {
			s.version.Add(1)
		}
		s.mu.Unlock()
	}
	return nil
}

// ResetRange zeroes the registers of keys [lo, hi) — the storage half of a
// partition evict: after a surrendered partition's new owners confirm their
// installs, the old owner truncates its copy so a later stale max-join
// cannot ratchet the dead registers back into the cluster. Draws no
// randomness; WAL-logged evicts replay bit-identically.
func (b *Bank) ResetRange(lo, hi int) error {
	if err := b.checkRange(lo, hi); err != nil {
		return err
	}
	if lo == hi {
		return nil
	}
	p := len(b.shards)
	for si, s := range b.shards {
		first := b.firstInShard(lo, si)
		if first >= hi {
			continue
		}
		s.mu.Lock()
		for k := first; k < hi; k += p {
			local := k >> b.shift
			if s.arr.Get(local) != 0 {
				s.arr.Set(local, 0)
				b.markDirty(k)
			}
		}
		s.version.Add(1)
		s.mu.Unlock()
	}
	return nil
}

// MergeRange folds regs (the registers of keys [lo, lo+len(regs)) from a
// bank of identical shape that counted a DISJOINT stream) into the bank via
// the paper's Remark 2.4 merge. The subsampling draws come from the
// receiver's shard generators, consumed in shard order then key order — a
// deterministic order, so a WAL-logged range merge replays bit-identically.
// On a validation error the bank is unmodified.
func (b *Bank) MergeRange(lo int, regs []uint64) error {
	ma, ok := b.alg.(bank.MergeAlgorithm)
	if !ok {
		return fmt.Errorf("shardbank: algorithm %q does not support merge", b.alg.Name())
	}
	hi := lo + len(regs)
	if err := b.checkRange(lo, hi); err != nil {
		return err
	}
	maxReg := ^uint64(0) >> uint(64-b.alg.Width())
	for i, v := range regs {
		if v > maxReg {
			return fmt.Errorf("shardbank: merge register %d = %d exceeds %d-bit width",
				lo+i, v, b.alg.Width())
		}
	}
	p := len(b.shards)
	for si, s := range b.shards {
		first := b.firstInShard(lo, si)
		if first >= hi {
			continue
		}
		s.mu.Lock()
		for k := first; k < hi; k += p {
			local := k >> b.shift
			old := s.arr.Get(local)
			if merged := ma.MergeRegs(old, regs[k-lo], s.rng); merged != old {
				s.arr.Set(local, merged)
				b.markDirty(k)
			}
		}
		s.version.Add(1)
		s.mu.Unlock()
	}
	return nil
}
