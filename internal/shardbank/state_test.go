package shardbank

import (
	"testing"

	"repro/internal/bank"
)

// Restore must invert Snapshot exactly, across shard counts and widths.
func TestRestoreInvertsSnapshot(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		alg := bank.NewMorrisAlg(0.02, 11)
		src := New(1000, alg, shards, 42)
		src.IncrementBatch(zipfKeys(1000, 20_000, 7))
		snap := src.Snapshot()

		dst := New(1000, alg, shards, 999) // different seed: registers still transfer
		if err := dst.Restore(snap); err != nil {
			t.Fatalf("shards=%d: restore: %v", shards, err)
		}
		for i := 0; i < 1000; i++ {
			if got, want := dst.Register(i), src.Register(i); got != want {
				t.Fatalf("shards=%d: register %d = %d after restore, want %d", shards, i, got, want)
			}
		}
	}
}

func TestRestoreShapeValidation(t *testing.T) {
	alg := bank.NewMorrisAlg(0.02, 11)
	b := New(100, alg, 4, 1)
	snap := b.Snapshot()
	if err := b.Restore(snap[:len(snap)-1]); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := b.Restore(append(snap, 0)); err == nil {
		t.Fatal("long payload accepted")
	}
	wrong := New(100, bank.NewMorrisAlg(0.02, 12), 4, 1).Snapshot()
	if err := b.Restore(wrong); err == nil {
		t.Fatal("payload of a different width accepted")
	}
}

// A bank restored from ExportState (registers + rng) must be bit-identical
// to the original under any shared future workload — the property that makes
// checkpoint + WAL-suffix recovery exact.
func TestRestoreStateContinuesExactly(t *testing.T) {
	const n = 2000
	alg := bank.NewMorrisAlg(0.01, 12)
	orig := New(n, alg, 8, 42)
	orig.IncrementBatch(zipfKeys(n, 50_000, 3))

	st := orig.ExportState()
	clone := New(n, alg, 8, 777) // wrong seed; RestoreState must overwrite rng
	if err := clone.RestoreState(st); err != nil {
		t.Fatalf("restore state: %v", err)
	}

	future := zipfKeys(n, 50_000, 4)
	orig.IncrementBatch(future)
	clone.IncrementBatch(future)
	for i := 0; i < n; i++ {
		if a, b := orig.Register(i), clone.Register(i); a != b {
			t.Fatalf("register %d diverged after restored continuation: %d vs %d", i, a, b)
		}
	}
}

func TestRestoreStateValidation(t *testing.T) {
	alg := bank.NewExactAlg(8)
	b := New(64, alg, 4, 1)
	if err := b.RestoreState(State{Registers: make([]uint64, 63)}); err == nil {
		t.Fatal("wrong register count accepted")
	}
	bad := make([]uint64, 64)
	bad[10] = 1 << 8
	if err := b.RestoreState(State{Registers: bad}); err == nil {
		t.Fatal("out-of-width register accepted")
	}
	if err := b.RestoreState(State{
		Registers: make([]uint64, 64),
		RNG:       make([][4]uint64, 3),
	}); err == nil {
		t.Fatal("wrong rng stream count accepted")
	}
	// Failed validation must leave the bank untouched.
	b.Increment(5)
	reg := b.Register(5)
	_ = b.RestoreState(State{Registers: bad})
	if b.Register(5) != reg {
		t.Fatal("failed RestoreState mutated the bank")
	}
}

func TestRestoreStateInvalidatesEstimateCache(t *testing.T) {
	alg := bank.NewExactAlg(8)
	b := New(16, alg, 4, 1)
	b.Increment(0)
	_ = b.EstimateAll() // populate cache
	regs := make([]uint64, 16)
	regs[3] = 200
	if err := b.RestoreState(State{Registers: regs}); err != nil {
		t.Fatalf("restore state: %v", err)
	}
	est := b.EstimateAll()
	if est[3] != 200 || est[0] != 0 {
		t.Fatalf("EstimateAll served stale cache after RestoreState: %v", est[:4])
	}
}
