package engine

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/shardbank"
	"repro/internal/snapcodec"
)

// KindBank names the register-bank engine.
const KindBank = "bank"

// BankEngine serves a sharded register bank (one approximate counter per
// key) through the Engine interface. It is a thin adapter over
// shardbank.Bank, pinned to the pre-engine serving stack bit for bit: WAL
// batches apply through the same IncrementBatch, snapshots carry the same
// snapcodec fields (no engine section — the header is what versions 1 and
// 2 wrote), and range hashes use the same FNV fold, so a store refactored
// onto this engine recovers old data directories and emits byte-identical
// /snapshot streams.
type BankEngine struct {
	b *shardbank.Bank
}

// NewBank wraps an existing sharded bank.
func NewBank(b *shardbank.Bank) *BankEngine { return &BankEngine{b: b} }

// BankFromSnapshot reconstructs a bank engine from a (whole-bank) snapshot,
// restoring registers and, when present, the per-shard generator states.
func BankFromSnapshot(snap *snapcodec.Snapshot) (*BankEngine, error) {
	if snap.IsEngine() {
		return nil, fmt.Errorf("engine: %q snapshot is not a bank snapshot", snap.Engine)
	}
	if snap.IsPartition() {
		return nil, fmt.Errorf("engine: cannot restore a bank from partition %d/%d", snap.Partition, snap.Parts)
	}
	alg, err := snap.Alg()
	if err != nil {
		return nil, err
	}
	b := shardbank.New(snap.N, alg, snap.Shards, snap.Seed)
	if err := b.RestoreState(shardbank.State{Registers: snap.Registers, RNG: snap.RNG}); err != nil {
		return nil, err
	}
	return &BankEngine{b: b}, nil
}

// Bank exposes the underlying sharded bank (read-mostly callers: tests,
// examples, tools). Nil-safe only on bank engines — other engines have no
// bank to expose.
func (e *BankEngine) Bank() *shardbank.Bank { return e.b }

// Kind implements Engine.
func (e *BankEngine) Kind() string { return KindBank }

// Len implements Engine.
func (e *BankEngine) Len() int { return e.b.Len() }

// Seed implements Engine.
func (e *BankEngine) Seed() uint64 { return e.b.Seed() }

// Shards implements Engine.
func (e *BankEngine) Shards() int { return e.b.Shards() }

// SizeBytes implements Engine.
func (e *BankEngine) SizeBytes() int { return e.b.SizeBytes() }

// Algorithm implements Engine.
func (e *BankEngine) Algorithm() bank.Algorithm { return e.b.Algorithm() }

// AlignPartitions implements Engine: registers are independently
// addressable, so any partition split of the key space works.
func (e *BankEngine) AlignPartitions() int { return 0 }

// ApplyBatch implements Engine.
func (e *BankEngine) ApplyBatch(keys []int) { e.b.IncrementBatch(keys) }

// Estimate implements Engine.
func (e *BankEngine) Estimate(key int) float64 { return e.b.Estimate(key) }

// EstimateAll implements Engine.
func (e *BankEngine) EstimateAll() []float64 { return e.b.EstimateAll() }

// TopK implements Engine by ranking the range's estimates — an O(hi−lo)
// scan over the read-mostly estimate cache; the bank tracks every key, so
// unlike the top-k engine the answer is exact w.r.t. the registers.
func (e *BankEngine) TopK(k, lo, hi int) ([]Entry, error) {
	if lo < 0 || hi > e.b.Len() || lo > hi {
		return nil, fmt.Errorf("engine: key range [%d, %d) outside [0, %d)", lo, hi, e.b.Len())
	}
	if k <= 0 {
		return []Entry{}, nil
	}
	// k comes straight off the HTTP query string — cap the buffer at the
	// range size so a hostile k cannot allocate gigabytes.
	if k > hi-lo {
		k = hi - lo
	}
	est := e.b.EstimateAll()
	out := make([]Entry, 0, k+1)
	for key := lo; key < hi; key++ {
		if v := est[key]; v > 0 {
			out = topkPush(out, k, key, v)
		}
	}
	return out, nil
}

// HashRange implements Engine with the FNV-1a register fold the
// pre-engine Store.PartitionHash used.
func (e *BankEngine) HashRange(lo, hi int) (uint64, error) {
	regs, err := e.b.ExportRange(lo, hi)
	if err != nil {
		return 0, err
	}
	h := newFNV()
	for _, v := range regs {
		h.word(v)
	}
	return h.sum(), nil
}

// Snapshot implements Engine. Whole-bank snapshots (parts == 0) export a
// globally consistent state cut; partition snapshots export the range's
// registers per shard lock (consistent per shard, monotone overall — what
// the max-join anti-entropy needs).
func (e *BankEngine) Snapshot(part, parts int, withState bool) (*snapcodec.Snapshot, error) {
	snap := &snapcodec.Snapshot{
		N:      e.b.Len(),
		Shards: e.b.Shards(),
		Seed:   e.b.Seed(),
	}
	if err := snap.SetAlg(e.b.Algorithm()); err != nil {
		return nil, err
	}
	if parts == 0 {
		state := e.b.ExportState()
		snap.Registers = state.Registers
		if withState {
			snap.RNG = state.RNG
		}
		return snap, nil
	}
	if withState {
		return nil, fmt.Errorf("engine: partition snapshots cannot carry generator state")
	}
	lo, hi := snapcodec.PartitionRange(e.b.Len(), parts, part)
	regs, err := e.b.ExportRange(lo, hi)
	if err != nil {
		return nil, err
	}
	snap.Partition = part
	snap.Parts = parts
	snap.Registers = regs
	return snap, nil
}

// CheckPeer implements Engine: the full validate-before-stage pass of the
// pre-engine store — algorithm merge support, algorithm and shape equality,
// and an explicit register-width re-check so a WAL-staged blob can never
// fail the in-bank merge (which would poison recovery replay).
func (e *BankEngine) CheckPeer(snap *snapcodec.Snapshot, disjoint bool) error {
	if snap.IsEngine() {
		return fmt.Errorf("engine kind mismatch: peer %q, local %q", snap.Engine, KindBank)
	}
	if disjoint {
		if _, ok := e.b.Algorithm().(bank.MergeAlgorithm); !ok {
			return fmt.Errorf("algorithm %q does not support merge", e.b.Algorithm().Name())
		}
	}
	alg, err := snap.Alg()
	if err != nil {
		return err
	}
	if alg != e.b.Algorithm() {
		return fmt.Errorf("algorithm mismatch: peer %s/%d-bit, local %s/%d-bit",
			snap.AlgName, snap.Width, e.b.Algorithm().Name(), e.b.BitsPerCounter())
	}
	if snap.N != e.b.Len() || snap.Shards != e.b.Shards() {
		return fmt.Errorf("shape mismatch: peer %d keys/%d shards, local %d/%d",
			snap.N, snap.Shards, e.b.Len(), e.b.Shards())
	}
	// The codec already rejects registers wider than the header width, and
	// the algorithm equality above pins that width to the bank's — but the
	// no-post-stage-failure invariant is too important to leave implicit in
	// another package: re-check here.
	maxReg := ^uint64(0) >> uint(64-e.b.BitsPerCounter())
	for i, v := range snap.Registers {
		if v > maxReg {
			return fmt.Errorf("register %d = %d exceeds %d-bit width", i, v, e.b.BitsPerCounter())
		}
	}
	return nil
}

// peerRange returns the key offset a peer snapshot's registers apply at.
// The partition count does not have to match the local serving split: the
// range is fully determined by (N, Parts, Partition), all validated by the
// codec, so any consistent split merges correctly.
func peerRange(snap *snapcodec.Snapshot) int {
	if !snap.IsPartition() {
		return 0
	}
	lo, _ := snapcodec.PartitionRange(snap.N, snap.Parts, snap.Partition)
	return lo
}

// Merge implements Engine via the paper's Remark 2.4 register merge
// (shardbank.MergeRange) — the disjoint-stream fold.
func (e *BankEngine) Merge(snap *snapcodec.Snapshot) error {
	return e.b.MergeRange(peerRange(snap), snap.Registers)
}

// MergeMax implements Engine via the register-wise maximum
// (shardbank.MergeMaxRange) — the idempotent same-stream replica join.
func (e *BankEngine) MergeMax(snap *snapcodec.Snapshot) error {
	return e.b.MergeMaxRange(peerRange(snap), snap.Registers)
}

// ResetRange implements Engine: zeroes the registers of [lo, hi)
// (shardbank.ResetRange) — the partition evict after a rebalance handoff.
func (e *BankEngine) ResetRange(lo, hi int) error {
	return e.b.ResetRange(lo, hi)
}

// TakeDirty implements Engine, delegating to the bank's block bitmap: the
// bank's whole-snapshot register layout is its key order, so shardbank's
// dirty blocks are snapcodec blocks verbatim.
func (e *BankEngine) TakeDirty() ([]uint32, bool) { return e.b.TakeDirty(), true }

// MarkDirty implements Engine.
func (e *BankEngine) MarkDirty(blocks []uint32) { e.b.MarkDirtyBlocks(blocks) }

// DirtyCount implements Engine.
func (e *BankEngine) DirtyCount() int { return e.b.DirtyBlocks() }

// BlockHashes implements Engine: per-block FNV-1a fingerprints of the
// partition's register export — the same registers (and the same fold)
// HashRange digests, cut at snapcodec block boundaries.
func (e *BankEngine) BlockHashes(part, parts int) ([]uint64, error) {
	lo, hi := 0, e.b.Len()
	if parts != 0 {
		lo, hi = snapcodec.PartitionRange(e.b.Len(), parts, part)
	}
	regs, err := e.b.ExportRange(lo, hi)
	if err != nil {
		return nil, err
	}
	return blockHashes(regs), nil
}
