// Package client is the smart cluster client: it learns the ring from any
// node (GET /cluster/ring), rebuilds the identical consistent-hash ring
// locally, and routes every increment and estimate straight to a replica
// that owns the key's partition — no proxy hop, no load balancer. Writes
// are shard-batched: keys buffer per destination node and flush as one
// POST /inc per node, so a Zipf stream against a 3-node ring costs three
// HTTP streams, not one per key.
//
// A Client is not safe for concurrent use (each goroutine of a load driver
// gets its own; they share nothing but the cluster). On routing errors it
// fails over to the other replicas and refreshes the ring.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/snapcodec"
)

// Config tunes a Client.
type Config struct {
	// Seeds are node base URLs; the first one that answers
	// GET /cluster/ring bootstraps the ring.
	Seeds []string
	// BatchSize is the per-destination buffer flushed as one POST /inc
	// (default 1024).
	BatchSize int
	// HTTPTimeout is the per-request deadline (default 5s).
	HTTPTimeout time.Duration
}

// Client routes increments and estimates to partition owners.
type Client struct {
	cfg  Config
	hc   *http.Client
	ring *cluster.Ring
	info cluster.RingInfo
	// reps caches ring.Replicas per partition: the per-event hot path
	// (Inc) then costs one multiply and one slice index instead of a hash
	// walk and three allocations per key.
	reps [][]string
	bufs map[string][]int // destination → pending keys
}

// New builds a client and fetches the ring from the first answering seed.
func New(cfg Config) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("client: no seed nodes")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 5 * time.Second
	}
	c := &Client{
		cfg:  cfg,
		hc:   &http.Client{Timeout: cfg.HTTPTimeout},
		bufs: make(map[string][]int),
	}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh re-fetches the ring from the seeds (trying live members too, so a
// client outlives its original seed).
func (c *Client) Refresh() error {
	tried := map[string]bool{}
	candidates := append([]string(nil), c.cfg.Seeds...)
	if c.ring != nil {
		candidates = append(candidates, c.ring.Members()...)
	}
	var lastErr error
	for _, seed := range candidates {
		if tried[seed] {
			continue
		}
		tried[seed] = true
		info, err := c.fetchRing(seed)
		if err != nil {
			lastErr = err
			continue
		}
		var members []string
		for _, m := range info.Members {
			if m.State != cluster.StateDead {
				members = append(members, m.ID)
			}
		}
		c.info = info
		c.ring = cluster.NewRing(members, info.RF, info.VNodes)
		c.reps = make([][]string, info.Partitions)
		for p := range c.reps {
			c.reps[p] = c.ring.Replicas(p)
		}
		return nil
	}
	return fmt.Errorf("client: no seed answered: %w", lastErr)
}

func (c *Client) fetchRing(seed string) (cluster.RingInfo, error) {
	var info cluster.RingInfo
	resp, err := c.hc.Get(seed + "/cluster/ring")
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return info, fmt.Errorf("%s/cluster/ring: status %d", seed, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return info, err
	}
	if info.N <= 0 || info.Partitions <= 0 {
		return info, fmt.Errorf("%s/cluster/ring: degenerate shape %d keys / %d partitions", seed, info.N, info.Partitions)
	}
	return info, nil
}

// N returns the cluster's key-space size.
func (c *Client) N() int { return c.info.N }

// Partitions returns the cluster's partition count.
func (c *Client) Partitions() int { return c.info.Partitions }

// Ring returns the client's current view of the ring.
func (c *Client) Ring() *cluster.Ring { return c.ring }

// replicasFor returns the replica set owning key k (shared cached slice —
// read-only).
func (c *Client) replicasFor(k int) []string {
	return c.reps[snapcodec.PartitionOf(k, c.info.N, c.info.Partitions)]
}

// Inc buffers one event for key k, flushing the destination's batch when
// full.
func (c *Client) Inc(k int) error {
	if k < 0 || k >= c.info.N {
		return fmt.Errorf("client: key %d out of range [0,%d)", k, c.info.N)
	}
	reps := c.replicasFor(k)
	if len(reps) == 0 {
		return errors.New("client: empty ring")
	}
	dest := reps[0]
	c.bufs[dest] = append(c.bufs[dest], k)
	if len(c.bufs[dest]) >= c.cfg.BatchSize {
		return c.flushDest(dest)
	}
	return nil
}

// IncBatch buffers a batch of events (one per key occurrence).
func (c *Client) IncBatch(keys []int) error {
	for _, k := range keys {
		if err := c.Inc(k); err != nil {
			return err
		}
	}
	return nil
}

// Flush sends every buffered batch. The client guarantees acked-or-error:
// a batch that cannot be delivered to any replica of its partition (even
// after a ring refresh) is reported, not dropped silently.
func (c *Client) Flush() error {
	for dest := range c.bufs {
		if err := c.flushDest(dest); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) flushDest(dest string) error {
	keys := c.bufs[dest]
	if len(keys) == 0 {
		return nil
	}
	err := c.post(dest, keys)
	if err == nil {
		delete(c.bufs, dest)
		return nil
	}
	// The primary is unreachable: any replica of the batch's partitions can
	// coordinate (each node re-routes keys it does not own), so fail over
	// through the other replicas of the first key, then refresh and retry.
	reps := c.replicasFor(keys[0])
	for _, alt := range reps[1:] {
		if c.post(alt, keys) == nil {
			delete(c.bufs, dest)
			return nil
		}
	}
	if rerr := c.Refresh(); rerr == nil {
		for _, alt := range c.replicasFor(keys[0]) {
			if c.post(alt, keys) == nil {
				delete(c.bufs, dest)
				return nil
			}
		}
	}
	return fmt.Errorf("client: flush to %s: %w", dest, err)
}

func (c *Client) post(dest string, keys []int) error {
	body, err := json.Marshal(map[string][]int{"keys": keys})
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(dest+"/inc", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s/inc: status %d: %s", dest, resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Estimate asks a replica of k's partition for N̂, failing over through the
// replica set.
func (c *Client) Estimate(k int) (float64, error) {
	return c.estimate(k, "")
}

// EstimateWindow is Estimate scoped to the trailing window — a duration
// ("5m") or bucket count ("3"), forwarded verbatim as the ?window= query
// parameter (the serving node owns the bucket math). Only meaningful
// against window-engine clusters; other engines answer 400.
func (c *Client) EstimateWindow(k int, window string) (float64, error) {
	if window == "" {
		return 0, errors.New("client: empty window")
	}
	return c.estimate(k, window)
}

func (c *Client) estimate(k int, window string) (float64, error) {
	if k < 0 || k >= c.info.N {
		return 0, fmt.Errorf("client: key %d out of range [0,%d)", k, c.info.N)
	}
	q := ""
	if window != "" {
		q = "?window=" + url.QueryEscape(window)
	}
	var lastErr error
	for _, rep := range c.replicasFor(k) {
		resp, err := c.hc.Get(fmt.Sprintf("%s/estimate/%d%s", rep, k, q))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: status %d", rep, resp.StatusCode)
			continue
		}
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return out.Estimate, nil
	}
	if lastErr == nil {
		lastErr = errors.New("empty ring")
	}
	return 0, fmt.Errorf("client: estimate key %d: %w", k, lastErr)
}

// TopK returns the cluster-wide top-k keys by estimate: every partition's
// primary (failing over through the replica set) reports its partition-local
// top k via GET /topk, and the reports merge client-side. Partitions tile
// the key space, so their key sets are disjoint and the merge is a
// concatenate-sort-truncate — no double counting across nodes. A partition
// whose whole replica set is unreachable fails the query rather than
// silently under-reporting.
func (c *Client) TopK(k int) ([]engine.Entry, error) {
	return c.topK(k, "")
}

// TopKWindow is TopK scoped to the trailing window — a duration ("5m") or
// bucket count ("3"), forwarded verbatim as ?window= to every partition
// primary. The per-partition reports are still disjoint (the window scopes
// time, not the key space), so the client-side merge is unchanged.
func (c *Client) TopKWindow(k int, window string) ([]engine.Entry, error) {
	if window == "" {
		return nil, errors.New("client: empty window")
	}
	return c.topK(k, window)
}

func (c *Client) topK(k int, window string) ([]engine.Entry, error) {
	if k <= 0 {
		return nil, fmt.Errorf("client: k = %d", k)
	}
	var all []engine.Entry
	n0, parts0 := c.info.N, c.info.Partitions
	for p := 0; p < parts0; p++ {
		entries, err := c.partitionTopK(k, p, window, c.reps[p])
		if err != nil {
			// One refresh: the ring may have moved under us. Entries
			// already gathered assume the (N, Partitions) tiling the query
			// started with — if the refreshed cluster is reshaped, ranges
			// would overlap and keys double-count, so fail instead.
			if rerr := c.Refresh(); rerr == nil {
				if c.info.N != n0 || c.info.Partitions != parts0 {
					return nil, fmt.Errorf("client: topk partition %d: cluster reshaped mid-query (%d keys/%d partitions → %d/%d)",
						p, n0, parts0, c.info.N, c.info.Partitions)
				}
				entries, err = c.partitionTopK(k, p, window, c.reps[p])
			}
			if err != nil {
				return nil, fmt.Errorf("client: topk partition %d: %w", p, err)
			}
		}
		all = append(all, entries...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Estimate != all[j].Estimate {
			return all[i].Estimate > all[j].Estimate
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// partitionTopK asks p's replicas (primary first) for the partition's top
// k entries, optionally window-scoped.
func (c *Client) partitionTopK(k, p int, window string, reps []string) ([]engine.Entry, error) {
	q := ""
	if window != "" {
		q = "&window=" + url.QueryEscape(window)
	}
	var lastErr error
	for _, rep := range reps {
		resp, err := c.hc.Get(fmt.Sprintf("%s/topk?k=%d&partition=%d%s", rep, k, p, q))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: status %d: %s", rep, resp.StatusCode, bytes.TrimSpace(msg))
			continue
		}
		var out struct {
			TopK []engine.Entry `json:"topk"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&out)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return out.TopK, nil
	}
	if lastErr == nil {
		lastErr = errors.New("empty replica set")
	}
	return nil, lastErr
}

// Close flushes pending batches.
func (c *Client) Close() error { return c.Flush() }
